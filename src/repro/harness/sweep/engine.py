"""The sweep scheduler: cache-tier resolution + queue-based fan-out.

Executing a sweep means resolving every grid cell to a
:class:`~repro.runtime.results.RunResult`:

1. probe the shared cache tiers (:func:`~repro.runtime.scenarios.lookup_scenario`:
   in-memory first, then the ambient persistent store);
2. resolve the misses — in-process when ``jobs == 1``; with ``jobs > 1``
   the scheduler *enqueues* each unique content address on the store's
   lease-based work queue (:mod:`repro.harness.sweep.queue`), spawns
   ``jobs`` local worker processes (``repro-bench --worker`` — the same
   loop remote workers run against a shared store directory), and awaits
   the results appearing in the :class:`~repro.runtime.store.ResultStore`;
3. reassemble in grid-key order, never completion order — so a
   distributed sweep's report is byte-for-byte identical to a serial
   one (results ship through the store's exact JSON codec).

Failure model: a worker killed mid-cell stops renewing its lease, so
the cell is reclaimed — by a surviving worker or by the scheduler's own
await loop — and re-executed; no cell is lost, and duplicated
executions converge through the store's idempotent atomic writes.  If
every local worker exits with work outstanding, the scheduler finishes
the remainder in-process, so ``run_sweep_outcome`` always terminates.

Per-cell progress and wall-clock timing are published on the ambient
telemetry bus (``sweep-start`` / ``sweep-run`` / ``sweep-done``, plus
the queue's ``queue-enqueue`` / ``lease-*`` kinds), which the metrics
updater folds into ``sweep_runs`` counters and histograms.
"""

from __future__ import annotations

import atexit
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import HarnessError
from repro.harness.sweep.queue import WorkQueue
from repro.harness.sweep.spec import ExperimentReport, Sweep
from repro.obs import current_telemetry
from repro.runtime.scenarios import (
    Scenario,
    install_result,
    lookup_scenario,
    run_scenario,
)
from repro.runtime.store import ResultStore, current_result_store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.results import RunResult

__all__ = [
    "RunRecord",
    "SweepOutcome",
    "run_sweep",
    "run_sweep_outcome",
    "shutdown_pools",
]

#: Default lease duration for scheduler-spawned local workers; also the
#: worst-case delay before a killed worker's cell is reclaimed.
DEFAULT_LEASE_TTL_S = 30.0

#: Scheduler/worker poll interval while awaiting queue progress.
POLL_S = 0.05


@dataclass(frozen=True)
class RunRecord:
    """How one grid cell was resolved."""

    key: str
    #: ``cached`` (either tier), ``executed`` (in-process), or
    #: ``worker`` (executed by a queue worker process).
    source: str
    #: Host wall-clock of the resolution (worker-side time for queue
    #: runs, from the queue's completion records).
    wall_s: float


@dataclass
class SweepOutcome:
    """One sweep execution: the report plus its execution accounting."""

    name: str
    exp_id: str
    scale: str
    jobs: int
    report: ExperimentReport
    records: list[RunRecord]
    wall_s: float

    @property
    def n_cached(self) -> int:
        return sum(1 for r in self.records if r.source == "cached")

    @property
    def n_executed(self) -> int:
        return len(self.records) - self.n_cached

    def timing_dict(self) -> dict:
        """JSON-safe accounting entry (the ``BENCH_sweep.json`` rows)."""
        return {
            "experiment": self.name,
            "exp_id": self.exp_id,
            "scale": self.scale,
            "jobs": self.jobs,
            "wall_s": self.wall_s,
            "n_scenarios": len(self.records),
            "n_cached": self.n_cached,
            "n_executed": self.n_executed,
            "runs": [
                {"key": r.key, "source": r.source, "wall_s": r.wall_s}
                for r in self.records
            ],
        }


# Locally-spawned worker processes, keyed by the resolved store path
# they drain.  Workers linger briefly when their queue empties (so a
# suite run reuses them across its dozen sweeps) and are terminated by
# shutdown_pools() — registered atexit, and called from the CLI's
# error paths, so an interrupted --jobs run leaks no processes.
_LOCAL_WORKERS: "dict[str, list[subprocess.Popen]]" = {}

#: Lazily-created queue/result store used by distributed resolution
#: when no ambient store session is active (results still enter the
#: in-memory cache; the directory is temporary).
_FALLBACK_STORE: "Optional[tempfile.TemporaryDirectory]" = None


def _queue_store() -> ResultStore:
    """The store backing the work queue: the ambient one, else a
    process-wide temporary store (cleaned up by :func:`shutdown_pools`)."""
    global _FALLBACK_STORE
    store = current_result_store()
    if store is not None:
        return store
    if _FALLBACK_STORE is None:
        _FALLBACK_STORE = tempfile.TemporaryDirectory(
            prefix="repro-sweep-queue-"
        )
    return ResultStore(_FALLBACK_STORE.name)


def _spawn_worker(store: ResultStore, index: int, lease_ttl_s: float) -> subprocess.Popen:
    """Start one local worker subprocess against ``store`` — the exact
    process remote hosts run via ``repro-bench --worker``."""
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.harness.cli",
            "--worker",
            "--store", str(store.path),
            "--worker-id", f"local-{index}",
            "--lease-ttl", str(lease_ttl_s),
            # Outlive a crashed peer's lease so the survivor reclaims
            # its cell instead of exiting first.
            "--idle-exit", str(lease_ttl_s + 5.0),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _ensure_local_workers(
    store: ResultStore, jobs: int, lease_ttl_s: float
) -> "list[subprocess.Popen]":
    """Top the store's local worker pool up to ``jobs`` live processes
    (dead ones are pruned; surviving ones are reused across sweeps)."""
    key = str(store.path.resolve())
    alive = [p for p in _LOCAL_WORKERS.get(key, []) if p.poll() is None]
    index = len(alive)
    while len(alive) < jobs:
        alive.append(_spawn_worker(store, index, lease_ttl_s))
        index += 1
    _LOCAL_WORKERS[key] = alive
    return alive


def _live_local_workers(store: ResultStore) -> "list[subprocess.Popen]":
    key = str(store.path.resolve())
    return [p for p in _LOCAL_WORKERS.get(key, []) if p.poll() is None]


def shutdown_pools() -> None:
    """Terminate every locally-spawned sweep worker and drop the
    fallback queue store.  Registered via ``atexit`` and called from
    the CLI's completion/error paths, so interrupted ``--jobs`` runs
    don't leak worker processes; tests and benchmark phases also use it
    to force fresh workers."""
    global _FALLBACK_STORE
    procs = [p for workers in _LOCAL_WORKERS.values() for p in workers]
    _LOCAL_WORKERS.clear()
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
            proc.kill()
            proc.wait()
    if _FALLBACK_STORE is not None:
        try:
            _FALLBACK_STORE.cleanup()
        except OSError:  # pragma: no cover - racing worker teardown
            pass
        _FALLBACK_STORE = None


atexit.register(shutdown_pools)


def _emit(kind: str, sweep: Sweep, detail: str = "", **fields: object) -> None:
    telemetry = current_telemetry()
    if telemetry is not None:
        telemetry.bus.emit(kind, -1, detail, sweep=sweep.name, **fields)


def _await_store(
    store: ResultStore,
    queue: WorkQueue,
    pending: "dict[str, Scenario]",
    *,
    spawn_workers: bool,
    lease_ttl_s: float,
) -> "tuple[dict[str, RunResult], dict[str, float], set[str]]":
    """Await every ``pending`` content address appearing in ``store``.

    Returns ``(results, wall_by_key, inline_keys)`` where ``inline_keys``
    are the cells the scheduler had to execute in-process itself (its
    liveness fallback when no worker survives).
    """
    from repro.harness.sweep.worker import WorkerOptions, worker_loop

    resolved: "dict[str, RunResult]" = {}
    inline: "set[str]" = set()
    scheduler_wall: "dict[str, float]" = {}
    while True:
        for key, scenario in pending.items():
            if key in resolved:
                continue
            if store.path_for_key(key).exists():
                result = store.get(scenario)
                if result is not None:
                    resolved[key] = result
        if len(resolved) == len(pending):
            break
        queue.reclaim_stale()
        if spawn_workers:
            if not _live_local_workers(store):
                # Every local worker exited (or crashed) with work
                # outstanding: finish the remainder in-process so the
                # sweep always terminates.
                for key, scenario in pending.items():
                    if key in resolved:
                        continue
                    queue.discard(key)
                    start = time.perf_counter()
                    resolved[key] = run_scenario(scenario)
                    scheduler_wall[key] = time.perf_counter() - start
                    inline.add(key)
                break
            time.sleep(POLL_S)
        else:
            # External-worker mode: the scheduler participates as one
            # more worker, draining whatever the attached workers have
            # not leased — progress never depends on them surviving.
            worker_loop(store, WorkerOptions(
                worker_id="scheduler",
                lease_ttl_s=lease_ttl_s,
                poll_s=POLL_S,
                idle_exit_s=4 * POLL_S,
                exit_when_empty=True,
            ))
            time.sleep(POLL_S)
    timings = dict(scheduler_wall)
    for key, record in queue.done_records().items():
        if key in pending and key not in timings:
            timings[key] = float(record.get("wall_s", 0.0))
    return resolved, timings, inline


def _resolve(
    sweep: Sweep,
    cells: "dict[str, Scenario]",
    jobs: int,
    records: "list[RunRecord]",
    *,
    spawn_workers: bool = True,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
) -> "dict[str, RunResult]":
    """Resolve ``cells`` to results, in grid-key order."""
    results: "dict[str, RunResult]" = {}

    if jobs <= 1:
        for key, scenario in cells.items():
            start = time.perf_counter()
            found = lookup_scenario(scenario)
            if found is not None:
                record = RunRecord(key, "cached", time.perf_counter() - start)
            else:
                found = run_scenario(scenario)
                record = RunRecord(key, "executed", time.perf_counter() - start)
            results[key] = found
            records.append(record)
            _emit("sweep-run", sweep, key, source=record.source,
                  wall_s=record.wall_s)
        return results

    # Distributed path: probe the cache tiers up front, enqueue each
    # *unique* pending content address (grids may alias cells — e.g.
    # the same baseline under two labels) exactly once, and let the
    # worker processes race for the leases.
    pending: "dict[str, Scenario]" = {}
    cached: "dict[str, RunResult]" = {}
    for key, scenario in cells.items():
        found = lookup_scenario(scenario)
        if found is not None:
            cached[key] = found
        else:
            pending.setdefault(ResultStore.key_for(scenario), scenario)

    resolved: "dict[str, RunResult]" = {}
    timings: "dict[str, float]" = {}
    inline: "set[str]" = set()
    if pending:
        store = _queue_store()
        queue = WorkQueue(store)
        for scenario in pending.values():
            queue.enqueue(scenario)
        if spawn_workers:
            _ensure_local_workers(store, jobs, lease_ttl_s)
        resolved, timings, inline = _await_store(
            store, queue, pending,
            spawn_workers=spawn_workers, lease_ttl_s=lease_ttl_s,
        )
        for key, scenario in pending.items():
            install_result(scenario, resolved[key])

    for key, scenario in cells.items():
        if key in cached:
            record = RunRecord(key, "cached", 0.0)
            results[key] = cached[key]
        else:
            ck = ResultStore.key_for(scenario)
            source = "executed" if ck in inline else "worker"
            record = RunRecord(key, source, timings.get(ck, 0.0))
            results[key] = resolved[ck]
        records.append(record)
        _emit("sweep-run", sweep, key, source=record.source,
              wall_s=record.wall_s)
    return results


def run_sweep_outcome(
    sweep: Sweep,
    scale: str = "small",
    *,
    jobs: int = 1,
    seed: "int | None" = None,
    spawn_workers: bool = True,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
) -> SweepOutcome:
    """Execute ``sweep`` at ``scale`` with ``jobs`` worker processes.

    ``jobs <= 1`` runs everything in-process.  With ``jobs > 1`` the
    misses go through the store-backed work queue; ``spawn_workers``
    controls whether the scheduler launches its own local worker
    processes (``False`` relies on externally-attached ``repro-bench
    --worker`` processes, with the scheduler itself draining whatever
    they don't lease).  Persistence comes from the ambient result store
    when a :func:`~repro.runtime.store.result_store_session` is active.
    ``seed`` re-seeds every grid (and follow-up) cell, giving one
    independent replication of the whole sweep per seed — the axis the
    ``repro-report`` multi-seed aggregates are built on.
    """
    start = time.perf_counter()
    cells = sweep.scenarios(scale, seed)
    _emit("sweep-start", sweep, scale, n_cells=len(cells), jobs=jobs)
    records: "list[RunRecord]" = []
    results = _resolve(
        sweep, cells, jobs, records,
        spawn_workers=spawn_workers, lease_ttl_s=lease_ttl_s,
    )
    if sweep.followups is not None:
        extra = sweep.followups(scale, results)
        if seed is not None:
            extra = {k: s.with_seed(seed) for k, s in extra.items()}
        collisions = set(extra) & set(results)
        if collisions:
            raise HarnessError(
                f"sweep {sweep.name!r}: follow-up keys collide with the "
                f"grid: {sorted(collisions)}"
            )
        results.update(_resolve(
            sweep, extra, jobs, records,
            spawn_workers=spawn_workers, lease_ttl_s=lease_ttl_s,
        ))
    report = sweep.report(scale, results)
    wall_s = time.perf_counter() - start
    _emit("sweep-done", sweep, scale, n_cells=len(records), wall_s=wall_s)
    return SweepOutcome(
        name=sweep.name,
        exp_id=sweep.exp_id,
        scale=scale,
        jobs=jobs,
        report=report,
        records=records,
        wall_s=wall_s,
    )


def run_sweep(
    sweep: Sweep,
    scale: str = "small",
    *,
    jobs: int = 1,
    seed: "int | None" = None,
) -> ExperimentReport:
    """:func:`run_sweep_outcome`, keeping only the report."""
    return run_sweep_outcome(sweep, scale, jobs=jobs, seed=seed).report
