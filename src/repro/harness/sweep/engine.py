"""The sweep executor: cache-tier resolution + process-pool fan-out.

Executing a sweep means resolving every grid cell to a
:class:`~repro.runtime.results.RunResult`:

1. probe the shared cache tiers (:func:`~repro.runtime.scenarios.lookup_scenario`:
   in-memory first, then the ambient persistent store);
2. execute the misses — in-process when ``jobs == 1``, or deduplicated
   by content address and farmed to a
   :class:`~concurrent.futures.ProcessPoolExecutor` when ``jobs > 1``;
3. install worker results into both cache tiers
   (:func:`~repro.runtime.scenarios.install_result`) so later sweeps in
   the same invocation, and later invocations via ``--resume``, reuse
   them.

Workers ship results through the store's exact JSON codec
(:mod:`repro.runtime.store`), and results are assembled in grid-key
order, never completion order — so a parallel sweep's report is
byte-for-byte identical to a serial one.

Per-cell progress and wall-clock timing are published on the ambient
telemetry bus (``sweep-start`` / ``sweep-run`` / ``sweep-done`` events),
which the PR 1 metrics updater folds into ``sweep_runs`` counters and a
``sweep_run_wall_s`` histogram.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import HarnessError
from repro.harness.sweep.spec import ExperimentReport, Sweep
from repro.obs import current_telemetry
from repro.runtime.scenarios import (
    Scenario,
    install_result,
    lookup_scenario,
    run_scenario,
)
from repro.runtime.store import result_from_dict, result_to_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.results import RunResult

__all__ = [
    "RunRecord",
    "SweepOutcome",
    "run_sweep",
    "run_sweep_outcome",
    "shutdown_pools",
]


@dataclass(frozen=True)
class RunRecord:
    """How one grid cell was resolved."""

    key: str
    #: ``cached`` (either tier), ``executed`` (in-process), or
    #: ``worker`` (executed in a pool process).
    source: str
    #: Host wall-clock of the resolution (worker-side time for pool runs).
    wall_s: float


@dataclass
class SweepOutcome:
    """One sweep execution: the report plus its execution accounting."""

    name: str
    exp_id: str
    scale: str
    jobs: int
    report: ExperimentReport
    records: list[RunRecord]
    wall_s: float

    @property
    def n_cached(self) -> int:
        return sum(1 for r in self.records if r.source == "cached")

    @property
    def n_executed(self) -> int:
        return len(self.records) - self.n_cached

    def timing_dict(self) -> dict:
        """JSON-safe accounting entry (the ``BENCH_sweep.json`` rows)."""
        return {
            "experiment": self.name,
            "exp_id": self.exp_id,
            "scale": self.scale,
            "jobs": self.jobs,
            "wall_s": self.wall_s,
            "n_scenarios": len(self.records),
            "n_cached": self.n_cached,
            "n_executed": self.n_executed,
            "runs": [
                {"key": r.key, "source": r.source, "wall_s": r.wall_s}
                for r in self.records
            ],
        }


# Worker pools are shared across sweeps (keyed by worker count): a
# suite run touches a dozen sweeps, and worker processes amortise their
# per-process workload preparation across all of them.
_POOLS: "dict[int, ProcessPoolExecutor]" = {}


def _get_pool(jobs: int) -> ProcessPoolExecutor:
    pool = _POOLS.get(jobs)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=jobs)
        _POOLS[jobs] = pool
    return pool


def shutdown_pools() -> None:
    """Shut down every shared worker pool (tests and benchmark phases
    use this to force fresh worker processes)."""
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.shutdown()


def _execute_scenario_worker(scenario_dict: dict) -> dict:
    """Pool-process entry point: run one scenario, bypassing the parent's
    caches, and return the codec dict plus the worker's wall-clock."""
    start = time.perf_counter()
    result = Scenario.from_dict(scenario_dict).execute()
    return {
        "result": result_to_dict(result),
        "wall_s": time.perf_counter() - start,
    }


def _emit(kind: str, sweep: Sweep, detail: str = "", **fields) -> None:
    telemetry = current_telemetry()
    if telemetry is not None:
        telemetry.bus.emit(kind, -1, detail, sweep=sweep.name, **fields)


def _resolve(
    sweep: Sweep,
    cells: "dict[str, Scenario]",
    jobs: int,
    records: "list[RunRecord]",
) -> "dict[str, RunResult]":
    """Resolve ``cells`` to results, in grid-key order."""
    results: "dict[str, RunResult]" = {}

    if jobs <= 1:
        for key, scenario in cells.items():
            start = time.perf_counter()
            found = lookup_scenario(scenario)
            if found is not None:
                record = RunRecord(key, "cached", time.perf_counter() - start)
            else:
                found = run_scenario(scenario)
                record = RunRecord(key, "executed", time.perf_counter() - start)
            results[key] = found
            records.append(record)
            _emit("sweep-run", sweep, key, source=record.source,
                  wall_s=record.wall_s)
        return results

    # Parallel path: probe the cache tiers up front, then submit each
    # *unique* pending scenario (grids may alias cells — e.g. the same
    # baseline under two labels) to the pool exactly once.
    pending: "dict[str, Scenario]" = {}
    cached: "dict[str, RunResult]" = {}
    for key, scenario in cells.items():
        found = lookup_scenario(scenario)
        if found is not None:
            cached[key] = found
        else:
            pending.setdefault(scenario.cache_key(), scenario)

    resolved: "dict[str, RunResult]" = {}
    timings: "dict[str, float]" = {}
    if pending:
        pool = _get_pool(jobs)
        futures = {
            ck: pool.submit(_execute_scenario_worker, scenario.to_dict())
            for ck, scenario in pending.items()
        }
        for ck, future in futures.items():
            payload = future.result()
            result = result_from_dict(payload["result"])
            resolved[ck] = result
            timings[ck] = payload["wall_s"]
            install_result(pending[ck], result)

    for key, scenario in cells.items():
        if key in cached:
            record = RunRecord(key, "cached", 0.0)
            results[key] = cached[key]
        else:
            ck = scenario.cache_key()
            record = RunRecord(key, "worker", timings[ck])
            results[key] = resolved[ck]
        records.append(record)
        _emit("sweep-run", sweep, key, source=record.source,
              wall_s=record.wall_s)
    return results


def run_sweep_outcome(
    sweep: Sweep,
    scale: str = "small",
    *,
    jobs: int = 1,
    seed: "int | None" = None,
) -> SweepOutcome:
    """Execute ``sweep`` at ``scale`` with ``jobs`` worker processes.

    ``jobs <= 1`` runs everything in-process.  Persistence comes from
    the ambient result store when a
    :func:`~repro.runtime.store.result_store_session` is active.
    ``seed`` re-seeds every grid (and follow-up) cell, giving one
    independent replication of the whole sweep per seed — the axis the
    ``repro-report`` multi-seed aggregates are built on.
    """
    start = time.perf_counter()
    cells = sweep.scenarios(scale, seed)
    _emit("sweep-start", sweep, scale, n_cells=len(cells), jobs=jobs)
    records: "list[RunRecord]" = []
    results = _resolve(sweep, cells, jobs, records)
    if sweep.followups is not None:
        extra = sweep.followups(scale, results)
        if seed is not None:
            extra = {k: s.with_seed(seed) for k, s in extra.items()}
        collisions = set(extra) & set(results)
        if collisions:
            raise HarnessError(
                f"sweep {sweep.name!r}: follow-up keys collide with the "
                f"grid: {sorted(collisions)}"
            )
        results.update(_resolve(sweep, extra, jobs, records))
    report = sweep.report(scale, results)
    wall_s = time.perf_counter() - start
    _emit("sweep-done", sweep, scale, n_cells=len(records), wall_s=wall_s)
    return SweepOutcome(
        name=sweep.name,
        exp_id=sweep.exp_id,
        scale=scale,
        jobs=jobs,
        report=report,
        records=records,
        wall_s=wall_s,
    )


def run_sweep(
    sweep: Sweep,
    scale: str = "small",
    *,
    jobs: int = 1,
    seed: "int | None" = None,
) -> ExperimentReport:
    """:func:`run_sweep_outcome`, keeping only the report."""
    return run_sweep_outcome(sweep, scale, jobs=jobs, seed=seed).report
