"""The sweep worker: lease → execute → store → release, in a loop.

``repro-bench --worker --store DIR`` runs this loop in its own process;
N of them — on one host or many sharing the store directory — drain the
scheduler's queue cooperatively.  The in-process ``--jobs N`` sweep path
is the same mechanism: :mod:`repro.harness.sweep.engine` spawns N of
these as local subprocesses, so there is exactly one execution path.

Liveness and crash-safety come from the lease protocol
(:mod:`repro.harness.sweep.queue`): while a cell executes, a background
daemon thread renews the lease every ``ttl/3`` seconds, so only a dead
worker's lease ever expires; when one does, the next ``lease()`` call —
any worker's, or the scheduler's — reclaims the cell.  Results travel
exclusively through the content-addressed
:class:`~repro.runtime.store.ResultStore` (atomic, idempotent writes),
so a duplicated execution after a reclaim converges to one valid entry.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.harness.sweep.queue import (
    Lease,
    LeaseLost,
    WorkQueue,
    default_worker_id,
)
from repro.obs import current_telemetry
from repro.runtime.scenarios import run_scenario
from repro.runtime.store import ResultStore, result_store_session

__all__ = ["WorkerOptions", "worker_loop"]


@dataclass
class WorkerOptions:
    """Knobs of one worker loop."""

    worker_id: str = field(default_factory=default_worker_id)
    #: Lease duration; also the upper bound on how long a crashed
    #: worker's cell stays unavailable before reclamation.
    lease_ttl_s: float = 30.0
    #: Sleep between lease attempts when nothing is leasable.
    poll_s: float = 0.05
    #: Exit after this long without acquiring a lease (a worker waiting
    #: on a peer's lease keeps polling — the peer may crash and its
    #: cell become reclaimable — so this should exceed ``lease_ttl_s``
    #: when crash recovery matters).
    idle_exit_s: float = 10.0
    #: Exit as soon as the queue is completely empty (one-shot drain)
    #: instead of lingering ``idle_exit_s`` for late-arriving work.
    exit_when_empty: bool = False


def _emit(kind: str, detail: str = "", **fields: object) -> None:
    telemetry = current_telemetry()
    if telemetry is not None:
        telemetry.bus.emit(kind, -1, detail, **fields)


def _execute_leased(
    store: ResultStore, queue: WorkQueue, lease: Lease, ttl_s: float
) -> "tuple[bool, float]":
    """Run one leased cell, renewing the lease from a daemon thread
    while the simulation executes.  Returns ``(released, wall_s)`` —
    ``released`` is ``False`` when the lease was lost mid-run (the
    result still reached the store; the winner's accounting stands)."""
    state = {"lease": lease, "lost": False}
    stop = threading.Event()

    def _renew_loop() -> None:
        while not stop.wait(ttl_s / 3.0):
            try:
                state["lease"] = queue.renew(state["lease"], ttl_s)
            except LeaseLost:
                state["lost"] = True
                return

    renewer = threading.Thread(target=_renew_loop, daemon=True)
    renewer.start()
    start = time.perf_counter()
    try:
        with result_store_session(store):
            run_scenario(lease.scenario)
    finally:
        stop.set()
        renewer.join()
    wall_s = time.perf_counter() - start
    if state["lost"]:
        return False, wall_s
    return queue.release(state["lease"], wall_s=wall_s), wall_s


def worker_loop(
    store: ResultStore, options: Optional[WorkerOptions] = None
) -> dict:
    """Drain ``store``'s work queue until idle; returns accounting.

    The returned dict is JSON-safe: cells completed, cells whose lease
    was lost mid-run, total busy wall-clock, and why the loop exited
    (``drained`` or ``idle``).
    """
    if options is None:
        options = WorkerOptions()
    queue = WorkQueue(store)
    _emit("worker-start", options.worker_id, worker=options.worker_id,
          store=str(store.path))
    cells = 0
    lost = 0
    busy_wall_s = 0.0
    reason = "idle"
    idle_since = time.time()
    while True:
        lease = queue.lease(options.worker_id, options.lease_ttl_s)
        if lease is None:
            counts = queue.counts()
            if (
                options.exit_when_empty
                and counts["pending"] == 0
                and counts["leased"] == 0
            ):
                reason = "drained"
                break
            if time.time() - idle_since >= options.idle_exit_s:
                reason = "idle"
                break
            time.sleep(options.poll_s)
            continue
        released, wall_s = _execute_leased(
            store, queue, lease, options.lease_ttl_s
        )
        busy_wall_s += wall_s
        if released:
            cells += 1
        else:
            lost += 1
        idle_since = time.time()
    stats = {
        "worker": options.worker_id,
        "cells": cells,
        "lost_leases": lost,
        "busy_wall_s": busy_wall_s,
        "exit": reason,
        "store": str(store.path),
    }
    _emit("worker-exit", options.worker_id, worker=options.worker_id,
          cells=cells, exit=reason)
    return stats
