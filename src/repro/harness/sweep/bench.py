"""Serial-vs-workers benchmark of the sweep suite (``BENCH_sweep.json``).

Runs the full declarative experiment registry three times — serially
(``jobs=1``), through the scheduler/worker split (``jobs=N`` external
worker processes leasing cells from the store's work queue), and
*resumed* (``jobs=1`` against the worker phase's warm store, so every
cell is served from disk) — from cold caches and disjoint result
stores, verifies the worker-phase and resumed reports are byte-for-byte
identical to the serial ones, and records per-experiment wall-clock and
cache accounting.  ``python -m repro.harness.sweep.bench --jobs 2``
writes the ``BENCH_sweep.json`` artifact the CI smoke job uploads.

The ``hotpath`` sweep is excluded by default: it measures *host*
wall-clock of the counting kernels (so its report can never be
byte-identical between runs) and contains no scenario grid for the
executor to parallelise.

The payload records the host's CPU count alongside the speedup: the
worker phase can only run as fast as the cores it is given, so on a
single-CPU container the artifact documents the byte-identity contract
while the speedup hovers around (or below) 1x.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Mapping, Optional

from repro.harness.sweep.engine import run_sweep_outcome, shutdown_pools
from repro.harness.sweep.spec import Sweep
from repro.runtime.scenarios import clear_cache
from repro.runtime.store import ResultStore, result_store_session

__all__ = ["run_sweep_bench", "write_sweep_json"]

#: Sweeps whose reports measure host wall-clock and are therefore
#: exempt from (and excluded from) the byte-identity comparison.
IDENTITY_EXEMPT = ("hotpath",)


def _suite(
    sweeps: "Mapping[str, Sweep]",
    scale: str,
    jobs: int,
    store: ResultStore,
) -> dict:
    """One cold phase: clear caches, run every sweep, account."""
    clear_cache()
    shutdown_pools()
    outcomes = {}
    start = time.perf_counter()
    with result_store_session(store):
        for name, sweep in sweeps.items():
            outcomes[name] = run_sweep_outcome(sweep, scale, jobs=jobs)
    wall_s = time.perf_counter() - start
    shutdown_pools()
    return {
        "jobs": jobs,
        "wall_s": wall_s,
        "store": store.stats(),
        "experiments": [o.timing_dict() for o in outcomes.values()],
        "reports": {n: o.report.to_json() for n, o in outcomes.items()},
    }


def run_sweep_bench(
    scale: str = "small",
    jobs: int = 2,
    sweeps: "Optional[Mapping[str, Sweep]]" = None,
    store_root: "Optional[Path]" = None,
) -> dict:
    """Benchmark the suite serially, with ``jobs`` worker processes,
    and resumed from the workers' warm store.

    Returns the ``BENCH_sweep.json`` payload; raises ``AssertionError``
    if any worker-phase or resumed report differs from its serial
    counterpart.
    """
    if sweeps is None:
        from repro.harness.experiments import ALL_SWEEPS

        sweeps = {
            name: sweep
            for name, sweep in ALL_SWEEPS.items()
            if name not in IDENTITY_EXEMPT
        }
    tmp = None
    if store_root is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-sweep-bench-")
        store_root = Path(tmp.name)
    try:
        serial = _suite(sweeps, scale, 1, ResultStore(store_root / "serial"))
        workers = _suite(sweeps, scale, jobs, ResultStore(store_root / "workers"))
        # The resumed phase re-runs the suite serially against the
        # worker phase's store: a fresh ResultStore handle over the same
        # directory, so its hit counters prove nothing re-executed.
        resumed = _suite(sweeps, scale, 1, ResultStore(store_root / "workers"))
    finally:
        if tmp is not None:
            tmp.cleanup()

    mismatches = [
        f"{phase_name}:{name}"
        for phase_name, phase in (("workers", workers), ("resumed", resumed))
        for name in sweeps
        if name not in IDENTITY_EXEMPT
        and serial["reports"][name] != phase["reports"][name]
    ]
    if mismatches:
        raise AssertionError(
            f"reports differ from serial: {mismatches}"
        )
    if resumed["store"]["misses"] > 0:
        raise AssertionError(
            "resumed phase re-executed scenarios "
            f"({resumed['store']['misses']} store misses)"
        )
    for phase in (serial, workers, resumed):
        phase.pop("reports")
    try:
        effective_cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux hosts
        effective_cpus = os.cpu_count() or 1
    return {
        "bench": "sweep",
        "scale": scale,
        # Wall-clock speedup is bounded by the cores actually available;
        # on a single-CPU host the worker phase can only verify the
        # byte-identity contract, not demonstrate a speedup.  A degraded
        # host (fewer effective CPUs than workers) is recorded so report
        # consumers can refuse to read the speedup as an engine property.
        "host": {
            "cpu_count": os.cpu_count(),
            "effective_cpus": effective_cpus,
            "host_degraded": effective_cpus < jobs,
        },
        "experiments": list(sweeps),
        "identity_exempt": [n for n in IDENTITY_EXEMPT if n in sweeps],
        "byte_identical": True,
        "serial": serial,
        "parallel": workers,
        "resumed": resumed,
        "speedup": serial["wall_s"] / workers["wall_s"],
        "resume_speedup": serial["wall_s"] / resumed["wall_s"],
    }


def write_sweep_json(path: "str | Path", payload: dict) -> Path:
    """Write the benchmark payload where CI can pick it up."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def main(argv: "Optional[list[str]]" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.sweep.bench",
        description="Benchmark the sweep suite: serial vs worker "
        "processes vs resumed from the warm store.",
    )
    parser.add_argument("--scale", default="small")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--out", default="BENCH_sweep.json")
    args = parser.parse_args(argv)
    payload = run_sweep_bench(scale=args.scale, jobs=args.jobs)
    out = write_sweep_json(args.out, payload)
    print(
        f"[sweep bench] {args.scale}: serial {payload['serial']['wall_s']:.1f}s, "
        f"{args.jobs} workers {payload['parallel']['wall_s']:.1f}s "
        f"({payload['speedup']:.2f}x on {payload['host']['effective_cpus']} "
        f"cpu), resumed {payload['resumed']['wall_s']:.1f}s "
        f"({payload['resume_speedup']:.1f}x), reports byte-identical -> {out}"
    )
    if payload["host"]["host_degraded"]:
        print(
            f"[sweep bench] warning: host degraded — "
            f"{payload['host']['effective_cpus']} effective CPU(s) for "
            f"{args.jobs} workers; the speedup measures CPU contention, "
            "not engine overhead"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
