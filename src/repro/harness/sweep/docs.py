"""Generate ``EXPERIMENTS.md`` from the declarative sweep registry.

Each :class:`~repro.harness.sweep.spec.Sweep` carries its paper-vs-
measured narrative in its ``doc`` field, next to the grid it documents;
this module assembles those sections (plus the static preamble, summary,
and calibration epilogue) into the repository's ``EXPERIMENTS.md``.

    python -m repro.harness.sweep.docs            # rewrite the file
    python -m repro.harness.sweep.docs --check    # CI drift check
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Mapping, Optional

from repro.harness.sweep.spec import Sweep

__all__ = ["render_experiments_md"]

#: The paper's own artifacts (§5), in presentation order.
PAPER_SECTIONS = (
    "table2", "table3", "table4", "fig3", "fig4", "fig5",
    "disk", "monitor", "policy", "blocksize",
)

#: Our additions beyond the paper's artifacts.
EXTENSION_SECTIONS = ("churn", "eld", "loss", "npa", "scaling", "hotpath")

INTRO = """\
# EXPERIMENTS — paper vs. measured

<!-- Generated from the Sweep registry by
     `python -m repro.harness.sweep.docs`; edit the `doc` fields in
     src/repro/harness/experiments.py, not this file. -->

Every table and figure of the paper's evaluation (§5), reproduced on the
simulated cluster at the default **small** scale
(`T10.I4.D1K`, 250 items, minsup 1 %, 4 application nodes, 4 096 hash
lines; the paper: `T10-ish`, 1 M transactions, 5 000 items, minsup 0.1 %,
8 application nodes, 800 000 hash lines). Regenerate any row below with
`repro-bench <id> --scale small` or `pytest benchmarks/ --benchmark-only`;
`REPRO_BENCH_SCALE=full` runs an 8-app-node / 16-memory-node layout.
Add `--jobs N` to fan scenario executions out to worker processes and
`--resume` to reuse a previous invocation's persisted results — both
leave every number below byte-identical.

Absolute times are *virtual seconds on a scaled workload* and are not
expected to match the paper's wall clock; the claims under test are the
**shapes**: orderings, ratios, knees, and flatness. Per-operation time
constants (RTT, transmit, disk access, fault service) are the paper's
own measurements and are unscaled.

Memory-usage limits are quoted in the paper's MB values, mapped through
the busiest node's candidate footprint (the paper's 12–15 MB limits are
78–97 % of its busiest node's 15.39 MB; ours are the same fractions of
our busiest node's bytes).

Each number below is one deterministic run at the scale's default seed.
For means with 95 % bootstrap confidence intervals and rank tests over
several replication seeds, render the statistical report:
`repro-report --scale small --seeds 3 --store rs --out reports`
(see DESIGN.md §13).

---
"""

SUMMARY = """\
## Summary

| artifact | claim | held? |
|---|---|---|
| Table 2 | pass-2 candidate explosion, natural termination | yes |
| Table 3 | near-equal per-node candidates with skew | yes (milder skew) |
| Table 4 | PF ≈ RTT + transmit + service ≈ 2–3 ms | yes (+queueing) |
| Figure 3 | few memory nodes bottleneck; knee by 8–16 | yes |
| Figure 4 | disk ≫ simple ≫ remote update | yes |
| Figure 5 | migration overhead negligible | yes |
| §5.2 | disk ≥13 ms / ≥7.5 ms vs ~2.3 ms remote | exact |
| §5.4 | monitor interval 1–3 s free | yes; <1 s penalty too small at this scale |

---

## Extensions beyond the paper's artifacts
"""

CALIBRATION = """\
### Calibration (`python -m repro.analysis.calibration`)

| quantity | simulated | paper | deviation |
|---|---|---|---|
| point-to-point RTT (64 B) | 0.521 ms | ~0.5 ms | +4.3 % |
| streaming throughput | 113 Mbps | ~120 Mbps | −5.5 % |
| 8-into-1 fan-in factor | 7.88× | 8× | −1.5 % |
| Barracuda random 4 KB read | 13.36 ms | ≥13.0 ms | +2.7 % |
| DK3E1T random 4 KB read | 7.76 ms | ≥7.5 ms | +3.5 % |
| remote pagefault (analytic) | 2.29 ms | 2.33 ms | −1.7 % |

All six primitives sit within tolerance of the paper's measurements;
`tests/analysis/test_calibration.py` enforces this permanently
(`tests/cluster/test_netperf.py` checks the measured network/disk
primitives against the paper's §5.2 figures directly).
"""


def _section(sweep: Sweep, level: str) -> str:
    body = sweep.doc.rstrip()
    return f"{level} {sweep.title} (`{sweep.name}`)\n\n{body}\n"


def render_experiments_md(
    sweeps: "Optional[Mapping[str, Sweep]]" = None,
) -> str:
    """The full EXPERIMENTS.md text for the given registry."""
    if sweeps is None:
        from repro.harness.experiments import ALL_SWEEPS

        sweeps = ALL_SWEEPS
    parts = [INTRO]
    parts.extend(_section(sweeps[name], "##") for name in PAPER_SECTIONS)
    parts.append(SUMMARY)
    parts.extend(_section(sweeps[name], "###") for name in EXTENSION_SECTIONS)
    parts.append(CALIBRATION)
    return "\n".join(parts)


def main(argv: "Optional[list[str]]" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.sweep.docs",
        description="Regenerate EXPERIMENTS.md from the sweep registry.",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parents[4] / "EXPERIMENTS.md"),
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if the file differs from the registry (no write)",
    )
    args = parser.parse_args(argv)
    text = render_experiments_md()
    out = Path(args.out)
    if args.check:
        current = out.read_text() if out.exists() else ""
        if current != text:
            print(f"{out} is stale; regenerate with "
                  "`python -m repro.harness.sweep.docs`")
            return 1
        print(f"{out} is in sync with the sweep registry")
        return 0
    out.write_text(text)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
