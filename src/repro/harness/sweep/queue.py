"""Lease-based work queue over the result store directory.

This is the coordination half of the scheduler/worker split: the
scheduler enqueues the content addresses of the scenarios a sweep still
needs (:meth:`WorkQueue.enqueue`), any number of worker processes — on
this host or on others sharing the store directory — lease cells
(:meth:`WorkQueue.lease`), execute them, write the result into the
:class:`~repro.runtime.store.ResultStore`, and release
(:meth:`WorkQueue.release`).  The store itself stays the only result
channel; the queue only ever moves *keys*.

Layout, under ``<store>/queue/``::

    queue.lock        advisory fcntl lock serializing queue mutations
    pending/<key>.json   a task: the scenario dict plus its address
    leased/<key>.json    the task plus {worker, deadline, attempt}
    done/<key>.json      completion accounting: {worker, wall_s, attempt}

Every transition is an atomic rename under the ``queue.lock`` flock, so
two workers can never lease the same cell, and a partially-written task
is never observed.  Leases carry a host wall-clock deadline: a live
worker renews it from a background thread while executing
(:mod:`repro.harness.sweep.worker`), so a lease that *expires* means its
worker died — the next :meth:`lease` call reclaims the cell back to
pending with a bumped attempt counter instead of losing it.  Duplicated
execution after a very late revival is harmless by construction: store
writes are idempotent atomic renames of byte-identical content.

Host-clock reads are confined to this harness-layer module (RPL101):
the runtime store's :meth:`~repro.runtime.store.ResultStore.gc` takes
``now`` as a parameter, and :func:`store_gc` here supplies it.
"""

from __future__ import annotations

import fcntl
import json
import os
import socket
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from repro.errors import HarnessError
from repro.obs import current_telemetry
from repro.runtime.scenarios import Scenario
from repro.runtime.store import ResultStore

__all__ = [
    "Lease",
    "LeaseLost",
    "WorkQueue",
    "default_worker_id",
    "store_gc",
]


class LeaseLost(HarnessError):
    """The lease expired and was reclaimed out from under its holder."""


def default_worker_id() -> str:
    """Host-qualified default worker identity (unique per process)."""
    return f"{socket.gethostname()}-{os.getpid()}"


def _emit(kind: str, detail: str = "", **fields: object) -> None:
    """Publish a queue event on the ambient telemetry bus, if any."""
    telemetry = current_telemetry()
    if telemetry is not None:
        telemetry.bus.emit(kind, -1, detail, **fields)


@dataclass(frozen=True)
class Lease:
    """One worker's exclusive claim on one queued cell."""

    #: Content address (the store entry this cell will become).
    key: str
    scenario: Scenario
    worker: str
    #: Host wall-clock time after which the claim may be reclaimed.
    deadline: float
    #: 1 on first lease; +1 every time an expired lease is reclaimed.
    attempt: int


class WorkQueue:
    """Concurrency-safe queue of scenario content addresses.

    All mutations run under an exclusive ``flock`` on ``queue.lock``
    and move task files between ``pending/``, ``leased/``, and ``done/``
    via atomic rename — execution itself happens outside the lock, so
    the critical sections are a few stat/rename calls long.
    """

    def __init__(self, store: ResultStore) -> None:
        self.store = store
        self.path = store.queue_path
        self.pending_path = self.path / "pending"
        self.leased_path = self.path / "leased"
        self.done_path = self.path / "done"
        for directory in (
            self.path, self.pending_path, self.leased_path, self.done_path,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        self._lock_path = self.path / "queue.lock"

    # -- locking -----------------------------------------------------------

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Exclusive advisory lock serializing queue mutations across
        processes (and hosts sharing the directory)."""
        fd = os.open(self._lock_path, os.O_CREAT | os.O_RDWR)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def _write(self, path: Path, payload: dict) -> None:
        """Atomic write: temp file in the queue dir, then rename."""
        tmp = self.path / f".tmp-{os.getpid()}-{path.name}"
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        os.replace(tmp, path)

    @staticmethod
    def _read(path: Path) -> Optional[dict]:
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    # -- scheduler side ----------------------------------------------------

    def enqueue(self, scenario: Scenario) -> bool:
        """Queue ``scenario`` unless it is already pending, leased, or
        resolved (its result entry exists in the store).  Returns
        whether a task was actually added — enqueueing is idempotent,
        so schedulers and resumed sweeps can enqueue unconditionally."""
        key = self.store.key_for(scenario)
        with self._locked():
            if self.store.path_for_key(key).exists():
                return False
            if (self.pending_path / f"{key}.json").exists():
                return False
            if (self.leased_path / f"{key}.json").exists():
                return False
            self._write(
                self.pending_path / f"{key}.json",
                {"key": key, "scenario": scenario.to_dict()},
            )
        _emit("queue-enqueue", key, key=key)
        return True

    def discard(self, key: str) -> bool:
        """Drop a task wherever it sits (scheduler-side cleanup when a
        cell was resolved outside the queue).  Returns whether anything
        was removed."""
        removed = False
        with self._locked():
            for directory in (self.pending_path, self.leased_path):
                task = directory / f"{key}.json"
                if task.exists():
                    task.unlink()
                    removed = True
        return removed

    # -- worker side -------------------------------------------------------

    def lease(
        self,
        worker: str,
        ttl_s: float,
        now: Optional[float] = None,
    ) -> Optional[Lease]:
        """Claim the first available cell for ``ttl_s`` seconds, or
        ``None`` when nothing is leasable.  Expired leases are reclaimed
        first, so a crashed worker's cell is re-leased — not lost."""
        if now is None:
            now = time.time()
        with self._locked():
            reclaimed = self._reclaim_stale_locked(now)
            candidates = sorted(self.pending_path.glob("*.json"))
            for candidate in candidates:
                task = self._read(candidate)
                if task is None:
                    continue
                key = task["key"]
                if self.store.path_for_key(key).exists():
                    # Resolved out-of-band (another queue, a serial
                    # run against the same store): nothing to execute.
                    candidate.unlink()
                    continue
                attempt = int(task.get("attempt", 0)) + 1
                task["attempt"] = attempt
                task["lease"] = {
                    "worker": worker,
                    "deadline": now + ttl_s,
                }
                self._write(self.leased_path / f"{key}.json", task)
                candidate.unlink()
                lease = Lease(
                    key=key,
                    scenario=Scenario.from_dict(task["scenario"]),
                    worker=worker,
                    deadline=now + ttl_s,
                    attempt=attempt,
                )
                break
            else:
                lease = None
        for key, stale_worker, attempt in reclaimed:
            _emit("lease-reclaim", key, key=key, worker=stale_worker,
                  attempt=attempt)
        if lease is not None:
            _emit("lease-acquire", lease.key, key=lease.key, worker=worker,
                  attempt=lease.attempt)
        return lease

    def renew(
        self,
        lease: Lease,
        ttl_s: float,
        now: Optional[float] = None,
    ) -> Lease:
        """Extend a held lease by ``ttl_s`` from now.  Raises
        :class:`LeaseLost` when the lease expired and was reclaimed (or
        completed) by someone else in the meantime."""
        if now is None:
            now = time.time()
        with self._locked():
            task = self._read(self.leased_path / f"{lease.key}.json")
            if task is None or not self._owned(task, lease):
                raise LeaseLost(
                    f"lease on {lease.key} lost by {lease.worker} "
                    f"(attempt {lease.attempt})"
                )
            task["lease"]["deadline"] = now + ttl_s
            self._write(self.leased_path / f"{lease.key}.json", task)
        _emit("lease-renew", lease.key, key=lease.key, worker=lease.worker)
        return Lease(
            key=lease.key,
            scenario=lease.scenario,
            worker=lease.worker,
            deadline=now + ttl_s,
            attempt=lease.attempt,
        )

    def release(self, lease: Lease, wall_s: float = 0.0) -> bool:
        """Complete a held lease: record the worker-side wall-clock in a
        ``done/`` record (scheduler accounting — never part of the store
        entry, which stays a pure function of config) and drop the
        task.  Returns ``False`` when the lease was already lost; the
        result is in the store either way."""
        with self._locked():
            task = self._read(self.leased_path / f"{lease.key}.json")
            if task is None or not self._owned(task, lease):
                return False
            self._write(
                self.done_path / f"{lease.key}.json",
                {
                    "key": lease.key,
                    "worker": lease.worker,
                    "wall_s": wall_s,
                    "attempt": lease.attempt,
                },
            )
            (self.leased_path / f"{lease.key}.json").unlink()
        _emit("lease-release", lease.key, key=lease.key, worker=lease.worker,
              wall_s=wall_s, attempt=lease.attempt)
        return True

    @staticmethod
    def _owned(task: dict, lease: Lease) -> bool:
        holder = task.get("lease", {})
        return (
            holder.get("worker") == lease.worker
            and int(task.get("attempt", 0)) == lease.attempt
        )

    # -- maintenance -------------------------------------------------------

    def _reclaim_stale_locked(self, now: float) -> "list[tuple[str, str, int]]":
        """Move every expired lease back to pending (caller holds the
        lock).  Returns ``(key, stale_worker, attempt)`` triples."""
        reclaimed = []
        for leased in sorted(self.leased_path.glob("*.json")):
            task = self._read(leased)
            if task is None:
                continue
            holder = task.get("lease", {})
            if float(holder.get("deadline", 0.0)) > now:
                continue
            key = task["key"]
            stale_worker = str(holder.get("worker", "?"))
            attempt = int(task.get("attempt", 0))
            if self.store.path_for_key(key).exists():
                # The worker died between the store write and release:
                # the result survived, so the cell is simply done.
                leased.unlink()
                continue
            task.pop("lease", None)
            self._write(self.pending_path / f"{key}.json", task)
            leased.unlink()
            reclaimed.append((key, stale_worker, attempt))
        return reclaimed

    def reclaim_stale(self, now: Optional[float] = None) -> "list[str]":
        """Reclaim expired leases (the scheduler calls this while
        awaiting completion, so recovery does not depend on a second
        worker surviving)."""
        if now is None:
            now = time.time()
        with self._locked():
            reclaimed = self._reclaim_stale_locked(now)
        for key, stale_worker, attempt in reclaimed:
            _emit("lease-reclaim", key, key=key, worker=stale_worker,
                  attempt=attempt)
        return [key for key, _, _ in reclaimed]

    def counts(self) -> dict:
        """Queue depth: ``{"pending": n, "leased": n, "done": n}``."""
        return {
            "pending": sum(1 for _ in self.pending_path.glob("*.json")),
            "leased": sum(1 for _ in self.leased_path.glob("*.json")),
            "done": sum(1 for _ in self.done_path.glob("*.json")),
        }

    def done_records(self) -> dict:
        """Completion accounting by content address: one
        ``{"worker", "wall_s", "attempt"}`` dict per released cell."""
        records = {}
        for done in sorted(self.done_path.glob("*.json")):
            record = self._read(done)
            if record is not None and "key" in record:
                records[record["key"]] = record
        return records


def store_gc(store: ResultStore, tmp_age_s: float = 3600.0) -> dict:
    """Garbage-collect a store directory and its queue state
    (``repro-bench --store-gc``).

    Drops orphaned temp files and old-:data:`~repro.runtime.store.STORE_FORMAT`
    entries (:meth:`ResultStore.gc`), requeues expired leases, removes
    tasks whose result already exists, and clears completed-cell
    accounting.  Returns the sorted-key summary the CLI prints.
    """
    now = time.time()
    summary = store.gc(now, tmp_age_s=tmp_age_s)
    queue = WorkQueue(store)
    leases_reclaimed = len(queue.reclaim_stale(now))
    tasks_orphaned = 0
    done_cleared = 0
    with queue._locked():
        for directory in (queue.pending_path, queue.leased_path):
            for task_path in sorted(directory.glob("*.json")):
                task = queue._read(task_path)
                if task is None or store.path_for_key(
                    str(task.get("key", ""))
                ).exists():
                    task_path.unlink()
                    tasks_orphaned += 1
        for done in queue.done_path.glob("*.json"):
            done.unlink()
            done_cleared += 1
        for tmp in queue.path.glob(".tmp-*"):
            try:
                if now - tmp.stat().st_mtime >= tmp_age_s:
                    tmp.unlink()
                    summary["tmp_removed"] += 1
            except OSError:
                continue
    summary.update({
        "store": str(store.path),
        "leases_reclaimed": leases_reclaimed,
        "tasks_orphaned": tasks_orphaned,
        "done_cleared": done_cleared,
    })
    removed = (
        summary["entries_removed"] + summary["tmp_removed"]
        + tasks_orphaned + done_cleared
    )
    telemetry = current_telemetry()
    if telemetry is not None and removed:
        telemetry.registry.counter("store_gc_removed").inc(removed)
    return summary
