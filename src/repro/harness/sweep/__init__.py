"""The declarative sweep engine behind every paper experiment.

An experiment is no longer a hand-written loop of driver runs: it is a
:class:`~repro.harness.sweep.spec.Sweep` — a named grid of
:class:`~repro.runtime.scenarios.Scenario` variations plus a report
builder — executed by :func:`~repro.harness.sweep.engine.run_sweep`.
The engine resolves every grid cell through the shared cache tiers
(in-memory :class:`~repro.runtime.scenarios.ScenarioCache`, then the
persistent :class:`~repro.runtime.store.ResultStore`), farms the misses
out to a :class:`~concurrent.futures.ProcessPoolExecutor` when
``jobs > 1``, and assembles results in grid order so the report is
byte-identical regardless of worker count or completion order.

:mod:`~repro.harness.sweep.bench` measures the serial-vs-parallel
wall-clock of the whole suite (the ``BENCH_sweep.json`` artifact);
:mod:`~repro.harness.sweep.docs` regenerates ``EXPERIMENTS.md`` from
the sweep definitions.
"""

from repro.harness.sweep.spec import ExperimentReport, Sweep
from repro.harness.sweep.engine import (
    RunRecord,
    SweepOutcome,
    run_sweep,
    run_sweep_outcome,
    shutdown_pools,
)

__all__ = [
    "ExperimentReport",
    "Sweep",
    "RunRecord",
    "SweepOutcome",
    "run_sweep",
    "run_sweep_outcome",
    "shutdown_pools",
]
