"""The declarative sweep engine behind every paper experiment.

An experiment is no longer a hand-written loop of driver runs: it is a
:class:`~repro.harness.sweep.spec.Sweep` — a named grid of
:class:`~repro.runtime.scenarios.Scenario` variations plus a report
builder — executed by :func:`~repro.harness.sweep.engine.run_sweep`.
The engine resolves every grid cell through the shared cache tiers
(in-memory :class:`~repro.runtime.scenarios.ScenarioCache`, then the
persistent :class:`~repro.runtime.store.ResultStore`); with ``jobs > 1``
it enqueues the misses on a lease-based work queue over the store
(:mod:`~repro.harness.sweep.queue`), drained by independent worker
processes (:mod:`~repro.harness.sweep.worker`, ``repro-bench --worker``)
on one or many hosts, and assembles results in grid order so the report
is byte-identical regardless of worker count or completion order.

:mod:`~repro.harness.sweep.serve` answers scenario and sweep-report
queries from a warm store over HTTP (``repro-bench --serve``);
:mod:`~repro.harness.sweep.bench` measures the serial-vs-workers
wall-clock of the whole suite (the ``BENCH_sweep.json`` artifact);
:mod:`~repro.harness.sweep.docs` regenerates ``EXPERIMENTS.md`` from
the sweep definitions.
"""

from repro.harness.sweep.spec import ExperimentReport, Sweep
from repro.harness.sweep.engine import (
    RunRecord,
    SweepOutcome,
    run_sweep,
    run_sweep_outcome,
    shutdown_pools,
)
from repro.harness.sweep.queue import (
    Lease,
    LeaseLost,
    WorkQueue,
    default_worker_id,
    store_gc,
)
from repro.harness.sweep.worker import WorkerOptions, worker_loop

__all__ = [
    "ExperimentReport",
    "Sweep",
    "RunRecord",
    "SweepOutcome",
    "run_sweep",
    "run_sweep_outcome",
    "shutdown_pools",
    "Lease",
    "LeaseLost",
    "WorkQueue",
    "default_worker_id",
    "store_gc",
    "WorkerOptions",
    "worker_loop",
]
