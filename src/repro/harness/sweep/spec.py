"""Sweep specifications: a declarative grid + a report builder.

A :class:`Sweep` replaces one hand-written ``exp_*`` loop.  Its ``grid``
maps a scale name to an ordered ``{key: Scenario}`` dict — pure data,
no execution — and its ``report`` folds the resolved ``{key: RunResult}``
mapping into an :class:`ExperimentReport`.  Experiments whose later
configurations depend on earlier results (Figure 5 schedules shortages
*inside* the measured pass of a base run) declare a ``followups`` stage,
which the engine resolves after the grid with the same executor.

Because the grid is data, the engine — not the experiment — decides
execution order, parallelism, caching, and persistence; and because
results are keyed, the report is a pure function of the grid, which is
what makes parallel and resumed runs byte-identical to serial ones.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Optional

from repro.errors import HarnessError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.results import RunResult
    from repro.runtime.scenarios import Scenario

__all__ = ["ExperimentReport", "Sweep"]


@dataclass
class ExperimentReport:
    """A rendered paper artifact plus its underlying data."""

    exp_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)
    paper_shape: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        header = f"== {self.exp_id}: {self.title} =="
        parts = [header, self.text]
        if self.paper_shape:
            parts.append(f"[paper shape] {self.paper_shape}")
        return "\n".join(parts)

    def to_json(self) -> str:
        """Machine-readable dump (keys stringified for JSON)."""

        def keyfix(obj):
            if isinstance(obj, dict):
                return {str(k): keyfix(v) for k, v in obj.items()}
            if isinstance(obj, (list, tuple)):
                return [keyfix(v) for v in obj]
            return obj

        return json.dumps(
            {
                "exp_id": self.exp_id,
                "title": self.title,
                "paper_shape": self.paper_shape,
                "data": keyfix(self.data),
            },
            indent=2,
        )


#: Stage 1: scale name -> ordered {key: Scenario}.
GridFn = Callable[[str], "dict[str, Scenario]"]
#: Stage 2 (optional): (scale, stage-1 results) -> more scenarios.
FollowupFn = Callable[[str, "Mapping[str, RunResult]"], "dict[str, Scenario]"]
#: Aggregation: (scale, all results) -> the rendered report.
ReportFn = Callable[[str, "Mapping[str, RunResult]"], ExperimentReport]


@dataclass(frozen=True)
class Sweep:
    """One declarative experiment: grid, optional follow-ups, report.

    Analytic experiments (Table 2/3, the §5.2 disk arithmetic, the
    hot-path wall-clock bench) have an empty grid and do all their work
    in ``report`` — they still gain the uniform registry, CLI, timing,
    and documentation surfaces.

    A :class:`Sweep` is callable with a scale name, returning its
    report, so the registry entries behave exactly like the historical
    ``exp_*(scale)`` functions.
    """

    #: CLI/registry name (``repro-bench <name>``).
    name: str
    #: Paper artifact id (``T2``, ``F4``, ``A1``, ...).
    exp_id: str
    title: str
    grid: GridFn
    report: ReportFn
    followups: Optional[FollowupFn] = None
    #: Markdown body for the generated EXPERIMENTS.md section.
    doc: str = ""

    def scenarios(
        self, scale: str, seed: Optional[int] = None
    ) -> "dict[str, Scenario]":
        """The stage-1 grid, validated (keys unique and non-empty).

        ``seed`` re-seeds every cell (the multi-seed report axis):
        the grid stays pure data, and the same declarative sweep yields
        one statistically independent replication per seed."""
        cells = self.grid(scale)
        for key in cells:
            if not key:
                raise HarnessError(f"sweep {self.name!r}: empty grid key")
        if seed is not None:
            cells = {k: s.with_seed(seed) for k, s in cells.items()}
        return cells

    def __call__(self, scale: str = "small") -> ExperimentReport:
        """Run this sweep serially at ``scale`` (the historical
        ``exp_*`` calling convention)."""
        from repro.harness.sweep.engine import run_sweep

        return run_sweep(self, scale)
