"""Read-only HTTP mode over the result store (``repro-bench --serve``).

The serving half of the north star's heavy-traffic story: once sweeps
have populated a content-addressed store (scheduler + workers, or plain
serial runs), this module answers scenario-key and sweep-report queries
from that store as JSON — with **zero scenario executions**, ever.  A
query for a cell the store doesn't hold is a 409 listing the missing
grid keys, not a trigger to simulate; running the simulation stays the
scheduler/worker plane's job.

Built on the stdlib :mod:`http.server` (threaded), so a serve node
needs nothing beyond the store directory.  Endpoints::

    GET /healthz                     liveness + entry count
    GET /stats                       store counters, sizes, queue depth
    GET /sweeps                      the sweep registry (name, id, title)
    GET /scenario/<key>              one stored entry by content address
    GET /sweep/<name>?scale=S[&seed=N]         report + accounting wrapper
    GET /sweep/<name>/report?scale=S[&seed=N]  raw report JSON — byte-
                                               identical to ``repro-bench
                                               <name> --json`` output

Every answered request is published on the ambient telemetry bus as a
``serve-request`` event (folded into the ``serve_requests`` counter by
status), when a telemetry session is active.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.harness.sweep.queue import WorkQueue
from repro.harness.sweep.spec import ExperimentReport, Sweep
from repro.obs import current_telemetry
from repro.runtime.store import ResultStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.results import RunResult

__all__ = [
    "StoreHTTPServer",
    "make_server",
    "resolve_report_from_store",
    "serve_store",
]


def resolve_report_from_store(
    sweep: Sweep,
    scale: str,
    store: ResultStore,
    seed: Optional[int] = None,
) -> "Tuple[Optional[ExperimentReport], list[str]]":
    """Assemble ``sweep``'s report purely from stored results.

    Returns ``(report, missing)``: the report when every grid (and
    follow-up) cell resolves from ``store``, else ``(None, keys)`` with
    the grid keys that would require execution.  Nothing is ever
    executed — this is the serving plane's hard contract.
    """
    results: "dict[str, RunResult]" = {}
    missing: "list[str]" = []
    cells = sweep.scenarios(scale, seed)
    for key, scenario in cells.items():
        found = store.get(scenario)
        if found is None:
            missing.append(key)
        else:
            results[key] = found
    if missing:
        return None, missing
    if sweep.followups is not None:
        extra = sweep.followups(scale, results)
        if seed is not None:
            extra = {k: s.with_seed(seed) for k, s in extra.items()}
        for key, scenario in extra.items():
            found = store.get(scenario)
            if found is None:
                missing.append(key)
            else:
                results[key] = found
        if missing:
            return None, missing
    return sweep.report(scale, results), []


class StoreHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one read-only result store."""

    daemon_threads = True

    def __init__(self, address: "tuple[str, int]", store: ResultStore) -> None:
        super().__init__(address, _StoreRequestHandler)
        self.store = store
        #: Sweeps answerable from the store.  Host-wall-clock sweeps
        #: (``hotpath``) are excluded: their reports are measurements of
        #: the serving host, not store contents.
        from repro.harness.experiments import ALL_EXPERIMENTS
        from repro.harness.sweep.bench import IDENTITY_EXEMPT

        self.sweeps = {
            name: sweep
            for name, sweep in ALL_EXPERIMENTS.items()
            if name not in IDENTITY_EXEMPT
        }


class _StoreRequestHandler(BaseHTTPRequestHandler):
    server: StoreHTTPServer

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Silence the default stderr access log; telemetry carries the
        per-request accounting instead."""

    def _respond(self, status: int, body: bytes,
                 content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        telemetry = current_telemetry()
        if telemetry is not None:
            telemetry.bus.emit(
                "serve-request", -1, self.path, status=status,
                bytes=len(body),
            )

    def _json(self, status: int, payload: dict) -> None:
        self._respond(
            status,
            (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(),
        )

    def _error(self, status: int, message: str, **extra: object) -> None:
        self._json(status, {"error": message, **extra})

    # -- routing -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server convention
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = parse_qs(url.query)
        try:
            if parts == ["healthz"]:
                self._handle_healthz()
            elif parts == ["stats"]:
                self._handle_stats()
            elif parts == ["sweeps"]:
                self._handle_sweeps()
            elif len(parts) == 2 and parts[0] == "scenario":
                self._handle_scenario(parts[1])
            elif len(parts) == 2 and parts[0] == "sweep":
                self._handle_sweep(parts[1], query, raw=False)
            elif len(parts) == 3 and parts[0] == "sweep" \
                    and parts[2] == "report":
                self._handle_sweep(parts[1], query, raw=True)
            else:
                self._error(404, f"unknown path {url.path!r}")
        except BrokenPipeError:  # pragma: no cover - client went away
            pass

    # -- handlers ----------------------------------------------------------

    def _handle_healthz(self) -> None:
        store = self.server.store
        self._json(200, {"status": "ok", "entries": len(store)})

    def _handle_stats(self) -> None:
        store = self.server.store
        self._json(200, {
            "stats": store.stats(),
            "entry_stats": store.entry_stats(),
            "queue": WorkQueue(store).counts(),
        })

    def _handle_sweeps(self) -> None:
        self._json(200, {
            "sweeps": [
                {"name": s.name, "exp_id": s.exp_id, "title": s.title}
                for s in self.server.sweeps.values()
            ],
        })

    def _handle_scenario(self, key: str) -> None:
        payload = self.server.store.read_payload(key)
        if payload is None:
            self._error(404, f"no store entry for key {key!r}", key=key)
            return
        self._json(200, payload)

    def _handle_sweep(self, name: str, query: "dict[str, list[str]]",
                      raw: bool) -> None:
        sweep = self.server.sweeps.get(name)
        if sweep is None:
            self._error(
                404, f"unknown sweep {name!r}",
                sweeps=sorted(self.server.sweeps),
            )
            return
        scale = query.get("scale", ["small"])[0]
        seed: Optional[int] = None
        try:
            if "seed" in query:
                seed = int(query["seed"][0])
        except ValueError:
            self._error(400, f"bad seed {query['seed'][0]!r}")
            return
        try:
            report, missing = resolve_report_from_store(
                sweep, scale, self.server.store, seed
            )
        except Exception as exc:  # noqa: BLE001 - surface as HTTP error
            self._error(500, f"{type(exc).__name__}: {exc}")
            return
        if report is None:
            self._error(
                409,
                f"store is cold for sweep {name!r} at scale {scale!r}: "
                f"{len(missing)} cell(s) unresolved (serving never "
                "executes scenarios — run the sweep through the "
                "scheduler/workers first)",
                missing=missing, executed=0,
            )
            return
        if raw:
            # Byte-identical to the scheduler's --json artifact.
            self._respond(200, report.to_json().encode())
            return
        self._json(200, {
            "sweep": name,
            "exp_id": sweep.exp_id,
            "scale": scale,
            "seed": seed,
            "executed": 0,
            "source": "store",
            "report": json.loads(report.to_json()),
        })


def make_server(
    store: ResultStore, host: str = "127.0.0.1", port: int = 0
) -> StoreHTTPServer:
    """Bind (but don't run) a serve-mode server; ``port=0`` picks an
    ephemeral port (tests read it back from ``server_address``)."""
    return StoreHTTPServer((host, port), store)


def serve_store(
    store: ResultStore, host: str = "127.0.0.1", port: int = 8321
) -> int:
    """Blocking entry point behind ``repro-bench --serve``."""
    server = make_server(store, host, port)
    bound_host, bound_port = server.server_address[:2]
    print(
        f"[repro-bench --serve] read-only store {store.path} at "
        f"http://{bound_host}:{bound_port} "
        f"(endpoints: /healthz /stats /sweeps /scenario/<key> "
        f"/sweep/<name>?scale=S)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        server.server_close()
    return 0
