"""Host wall-clock profiling of simulation phases, from the harness side.

The drivers mark phase boundaries on the telemetry bus (``phase`` point
events and ``pass{k}/...`` spans) as the simulation crosses them.  Bus
dispatch is synchronous, so the *host* moment a boundary event reaches a
subscriber is the host moment the simulation reached that boundary —
which lets this module measure per-phase wall-clock without the drivers
ever touching a host clock.  That separation is load-bearing: driver
results are cached content-addressed (:mod:`repro.runtime.store`), so
nothing nondeterministic may flow into them; ``repro-lint``'s RPL101
checker enforces the boundary statically, and this profiler is the
sanctioned way to get the measurement back.

Phases within a pass are separated by global barriers, so host time
between two consecutive boundary events is exactly the host cost of the
phase in between — the same quantity the drivers used to (illegally)
measure inline with ``time.perf_counter()``.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

from repro.obs import Telemetry
from repro.obs.events import ObsEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.driver import MiningDriver

__all__ = ["PhaseWallClock"]


class PhaseWallClock:
    """Bus subscriber stamping host time at phase boundaries.

    One profiler can follow several consecutive runs on a shared bus
    (stamps are keyed by the bus's run id).  Attach before ``run()``::

        profiler = PhaseWallClock()
        run = HPARun(db, cfg)
        profiler.attach(run)
        result = run.run()
        walls = profiler.pass_walls(2)   # {"candgen_wall_s": ..., ...}
    """

    def __init__(self) -> None:
        #: (run, kind, detail) -> host perf_counter at first emission.
        self._stamps: dict[tuple[int, str, str], float] = {}

    # -- wiring ------------------------------------------------------------

    def subscriber(self):
        """The bus subscriber callable (subscribe on any telemetry bus)."""

        def _stamp(event: ObsEvent) -> None:
            key = (event.run, event.kind, event.detail)
            self._stamps.setdefault(key, time.perf_counter())

        return _stamp

    def attach(self, run: "MiningDriver") -> "PhaseWallClock":
        """Wire this profiler into ``run`` before it executes.

        When the run has no telemetry yet, a *lean* session is created:
        the driver's phase/span marks flow (that is all this profiler
        needs) but no component — network, pagers, monitors — is wired
        to the bus, so the simulation hot path pays nothing.  With an
        existing telemetry session the profiler simply subscribes.
        """
        if run.telemetry is None:
            telemetry = Telemetry()
            telemetry.begin_run(run.env, {"driver": run.driver_name})
            run.telemetry = telemetry
        run.telemetry.bus.subscribe(self.subscriber())
        return self

    # -- queries -----------------------------------------------------------

    def stamp(self, kind: str, detail: str, run: int = 0) -> Optional[float]:
        """Host time of one boundary event, or ``None`` if never seen."""
        return self._stamps.get((run, kind, detail))

    def pass_walls(self, k: int, run: int = 0) -> dict[str, float]:
        """Host wall-clock per phase of pass ``k``.

        Keys mirror the historical ``PassResult`` field names
        (``candgen_wall_s`` / ``counting_wall_s`` / ``determine_wall_s``);
        a phase whose boundary events never fired reports 0.0.
        """
        t_start = self.stamp("phase", f"pass {k} start", run)
        t_candgen = self.stamp("span", f"pass{k}/candgen", run)
        t_count = self.stamp("span", f"pass{k}/counting", run)
        t_det = self.stamp("span", f"pass{k}/determine", run)

        def delta(a: Optional[float], b: Optional[float]) -> float:
            if a is None or b is None:
                return 0.0
            return b - a

        return {
            "candgen_wall_s": delta(t_start, t_candgen),
            "counting_wall_s": delta(t_candgen, t_count),
            "determine_wall_s": delta(t_count, t_det),
        }
