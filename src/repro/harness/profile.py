"""``repro-bench --profile``: cProfile a named scenario.

Kernel work should start from data, not intuition: this runs one
scenario from the runtime catalogue under :mod:`cProfile` and reports
the top-N hot spots sorted by *cumulative* time — the view that exposes
which layer of the stack (engine step loop, resource dispatch, swap
manager, counting kernel) owns the wall clock.
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Optional

from repro.errors import ConfigError, HarnessError

__all__ = ["profile_scenario", "render_profile"]


def profile_scenario(name: str, top_n: int = 25, seed: Optional[int] = None) -> dict:
    """Run scenario ``name`` under cProfile; return a JSON-able report.

    The scenario result cache is bypassed (a cached hit would profile a
    dictionary lookup).  Entries are sorted by cumulative time.
    """
    from repro.runtime import get_scenario, run_scenario

    try:
        scenario = get_scenario(name)
    except ConfigError as exc:
        raise HarnessError(
            f"unknown scenario {name!r}; repro-bench --list-scenarios "
            "shows the catalogue"
        ) from exc
    if seed is not None:
        scenario = scenario.with_seed(seed)

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = run_scenario(scenario, cache=False)
    finally:
        profiler.disable()

    stats = pstats.Stats(profiler)
    stats.sort_stats(pstats.SortKey.CUMULATIVE)
    entries = []
    for func in stats.fcn_list[:top_n]:  # type: ignore[attr-defined]
        cc, nc, tt, ct, _callers = stats.stats[func]  # type: ignore[attr-defined]
        filename, lineno, funcname = func
        entries.append(
            {
                "function": funcname,
                "file": filename,
                "line": lineno,
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    total_tt = sum(row[2] for row in stats.stats.values())  # type: ignore[attr-defined]
    return {
        "scenario": name,
        "driver": scenario.driver,
        "scale": scenario.scale,
        "seed": scenario.seed,
        "sort": "cumulative",
        "top_n": top_n,
        "total_time_s": round(total_tt, 6),
        "sim_time_s": result.total_time_s,
        "hotspots": entries,
    }


def render_profile(data: dict) -> str:
    """One-line-per-hotspot text view of :func:`profile_scenario` output."""
    lines = [
        f"profile of scenario {data['scenario']} "
        f"({data['total_time_s']:.2f}s host, {data['sim_time_s']:.2f}s simulated)",
        f"  {'cumtime':>9s} {'tottime':>9s} {'ncalls':>10s}  function",
    ]
    for h in data["hotspots"]:
        lines.append(
            f"  {h['cumtime_s']:>9.3f} {h['tottime_s']:>9.3f} "
            f"{h['ncalls']:>10d}  {h['function']} "
            f"({h['file']}:{h['line']})"
        )
    return "\n".join(lines)
