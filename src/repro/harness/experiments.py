"""One function per paper table/figure: run, and report paper-style rows.

Every experiment returns an :class:`ExperimentReport` whose ``text`` is
the same table/series the paper prints, plus machine-readable ``data``
used by the benchmark assertions and EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis import (
    disk_comparison,
    pagefault_row,
    predicted_fault_time_s,
    render_kv,
    render_series,
    render_table,
)
from repro.analysis.cost_model import PAPER_COSTS
from repro.cluster.specs import ATM_155
from repro.datagen import generate
from repro.mining import apriori, skew_statistics
from repro.mining.hpa import HPAResult
from repro.harness.scales import SCALES, prepare_workload
from repro.runtime.scenarios import Scenario, run_scenario

__all__ = [
    "ExperimentReport",
    "exp_table2_pass_profile",
    "exp_table3_partition_skew",
    "exp_table4_pagefault_cost",
    "exp_fig3_memory_nodes",
    "exp_fig4_method_comparison",
    "exp_fig5_migration",
    "exp_disk_access_analysis",
    "exp_monitor_interval",
    "exp_ablation_policy",
    "exp_ablation_blocksize",
    "exp_ablation_eld",
    "exp_ablation_loss",
    "exp_scaling",
    "exp_npa_comparison",
    "exp_hotpath",
    "ALL_EXPERIMENTS",
]


@dataclass
class ExperimentReport:
    """A rendered paper artifact plus its underlying data."""

    exp_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)
    paper_shape: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        header = f"== {self.exp_id}: {self.title} =="
        parts = [header, self.text]
        if self.paper_shape:
            parts.append(f"[paper shape] {self.paper_shape}")
        return "\n".join(parts)

    def to_json(self) -> str:
        """Machine-readable dump (keys stringified for JSON)."""

        def keyfix(obj):
            if isinstance(obj, dict):
                return {str(k): keyfix(v) for k, v in obj.items()}
            if isinstance(obj, (list, tuple)):
                return [keyfix(v) for v in obj]
            return obj

        return json.dumps(
            {
                "exp_id": self.exp_id,
                "title": self.title,
                "paper_shape": self.paper_shape,
                "data": keyfix(self.data),
            },
            indent=2,
        )


def _run_cached(
    scale_name: str,
    pager: str,
    n_mem: int,
    paper_mb: Optional[float],
    replacement: str = "lru",
    monitor_interval_s: Optional[float] = None,
    message_block_bytes: Optional[int] = None,
    shortages: tuple = (),
    eld_fraction: float = 0.0,
    loss_probability: float = 0.0,
    driver: str = "hpa",
) -> HPAResult:
    """Execute one driver configuration through the scenario layer.

    Results are shared across experiments by the runtime's explicit
    scenario cache (``repro.runtime.clear_cache`` empties it;
    ``repro.runtime.cache_stats`` reports hits/misses).
    """
    return run_scenario(
        Scenario(
            driver=driver,
            scale=scale_name,
            pager=pager,
            n_memory_nodes=n_mem,
            paper_mb=paper_mb,
            replacement=replacement,
            monitor_interval_s=monitor_interval_s,
            message_block_bytes=message_block_bytes,
            shortages=shortages,
            eld_fraction=eld_fraction,
            loss_probability=loss_probability,
        )
    )


def _pass2_time(res: HPAResult) -> float:
    return res.pass_result(2).duration_s


# ---------------------------------------------------------------------------
# Table 2 — candidate / large itemsets at each pass
# ---------------------------------------------------------------------------

def exp_table2_pass_profile(scale: str = "small") -> ExperimentReport:
    """Reproduce Table 2's per-pass candidate explosion.

    The paper mines 10 M transactions at 0.7 % support; pass 2's
    candidate count dwarfs every other pass and the run dies out by
    pass 5.  We mine a scaled workload at a support chosen to terminate
    naturally within a few passes.
    """
    s = SCALES[scale]
    db = generate(s.workload, n_items=s.n_items, seed=s.seed)
    # A higher support than the swapping experiments so that later passes
    # shrink sharply, matching Table 2's cliff.
    minsup = s.minsup * 2.5
    res = apriori(db, minsup=minsup)
    rows = [
        (f"pass {k}", "" if c is None else c, l)
        for k, c, l in res.table2_rows()
    ]
    c2 = res.passes[1].n_candidates if len(res.passes) > 1 else 0
    later = max((p.n_candidates for p in res.passes[2:]), default=0)
    text = render_table(
        ["pass", "C (candidates)", "L (large)"],
        rows,
        title=f"Table 2 equivalent — {s.workload}, {s.n_items} items, minsup={minsup:g}",
    )
    return ExperimentReport(
        exp_id="T2",
        title="Number of candidate and large itemsets at each pass",
        text=text,
        data={
            "rows": res.table2_rows(),
            "c2": c2,
            "max_later_candidates": later,
            "c2_dominates": later < c2,
        },
        paper_shape="C2 >> C_k for all k>2; iteration terminates when "
        "large/candidate itemsets run out (paper: 522753 candidates in "
        "pass 2 vs <=19 afterwards).",
    )


# ---------------------------------------------------------------------------
# Table 3 — candidate 2-itemsets per node (hash partitioning skew)
# ---------------------------------------------------------------------------

def exp_table3_partition_skew(scale: str = "small") -> ExperimentReport:
    """Reproduce Table 3: per-node candidate counts are close but skewed."""
    prep = prepare_workload(scale)
    stats = skew_statistics(prep.per_node_candidates)
    rows = [
        (f"node {i + 1}", c) for i, c in enumerate(prep.per_node_candidates)
    ]
    text = "\n".join(
        [
            render_table(
                ["node", "candidate 2-itemsets"],
                rows,
                title=f"Table 3 equivalent — {prep.scale.workload}, "
                f"{prep.n_candidates_2} candidates over "
                f"{prep.scale.n_app_nodes} nodes",
            ),
            render_kv(
                {
                    "mean": stats.mean,
                    "max": stats.maximum,
                    "min": stats.minimum,
                    "max/mean": stats.max_over_mean,
                    "coeff. of variation": stats.coefficient_of_variation,
                }
            ),
        ]
    )
    return ExperimentReport(
        exp_id="T3",
        title="Number of candidate 2-itemsets at each node",
        text=text,
        data={
            "per_node": list(prep.per_node_candidates),
            "max_over_mean": stats.max_over_mean,
        },
        paper_shape="counts near-equal but unequal (paper: 582149..641243 "
        "around a 608985 mean, ~5% skew).",
    )


# ---------------------------------------------------------------------------
# Table 4 — execution time of each pagefault
# ---------------------------------------------------------------------------

def exp_table4_pagefault_cost(scale: str = "small") -> ExperimentReport:
    """Reproduce Table 4: per-pagefault time from Exec/Diff/Max columns."""
    prep = prepare_workload(scale)
    n_mem = prep.scale.max_memory_nodes
    baseline = _pass2_time(_run_cached(scale, "remote", n_mem, None))
    rows = []
    per_fault = {}
    for mb in prep.scale.limits_mb:
        res = _run_cached(scale, "remote", n_mem, mb)
        p2 = res.pass_result(2)
        row = pagefault_row(f"{mb:g}MB", p2.duration_s, baseline, p2.max_faults)
        rows.append(row)
        per_fault[mb] = row.per_fault_s
    predicted = predicted_fault_time_s(PAPER_COSTS, ATM_155)
    text = "\n".join(
        [
            render_table(
                ["usage limit", "Exec [s]", "Diff [s]", "Max faults", "PF [ms]"],
                [
                    (r.label, r.exec_time_s, r.diff_time_s, r.max_faults,
                     r.per_fault_s * 1e3)
                    for r in rows
                ],
                title=f"Table 4 equivalent — {n_mem} memory-available nodes, "
                f"no-limit baseline {baseline:.1f}s",
            ),
            f"analytic decomposition (RTT + 4KB transmit + service): "
            f"{predicted * 1e3:.2f} ms",
        ]
    )
    return ExperimentReport(
        exp_id="T4",
        title="Execution time of each pagefault",
        text=text,
        data={
            "baseline_s": baseline,
            "per_fault_ms": {mb: v * 1e3 for mb, v in per_fault.items()},
            "predicted_ms": predicted * 1e3,
        },
        paper_shape="PF time ~2.2-2.4 ms, roughly constant across limits "
        "(paper: 2.37/2.33/2.22/1.90 ms), decomposed as 0.5 ms RTT + "
        "0.3 ms transmit + ~1.5 ms service.",
    )


# ---------------------------------------------------------------------------
# Figure 3 — execution time vs number of memory-available nodes
# ---------------------------------------------------------------------------

def exp_fig3_memory_nodes(scale: str = "small") -> ExperimentReport:
    """Reproduce Figure 3: few memory nodes bottleneck the fault service."""
    prep = prepare_workload(scale)
    series: dict[str, dict[int, float]] = {}
    for mb in prep.scale.limits_mb:
        series[f"limit {mb:g}MB"] = {
            n: _pass2_time(_run_cached(scale, "remote", n, mb))
            for n in prep.scale.memory_node_counts
        }
    series["no limit"] = {
        n: _pass2_time(_run_cached(scale, "remote", n, None))
        for n in prep.scale.memory_node_counts
    }
    text = render_series(
        "#memory nodes",
        series,
        title=f"Figure 3 equivalent — pass 2 execution time [s], "
        f"{prep.scale.n_app_nodes} application nodes",
    )
    tight = f"limit {prep.scale.limits_mb[0]:g}MB"
    n_min, n_max = min(prep.scale.memory_node_counts), max(prep.scale.memory_node_counts)
    return ExperimentReport(
        exp_id="F3",
        title="Execution time of HPA (pass 2) vs memory-available nodes",
        text=text,
        data={
            "series": {k: dict(v) for k, v in series.items()},
            "bottleneck_ratio": series[tight][n_min] / series[tight][n_max],
        },
        paper_shape="curves fall steeply from 1 memory node and flatten by "
        "8-16; lower limits sit higher; the no-limit curve is flat and "
        "lowest.",
    )


# ---------------------------------------------------------------------------
# Figure 4 — disk vs simple swapping vs remote update
# ---------------------------------------------------------------------------

def exp_fig4_method_comparison(scale: str = "small") -> ExperimentReport:
    """Reproduce Figure 4: the three swapping mechanisms vs usage limit."""
    prep = prepare_workload(scale)
    n_mem = prep.scale.max_memory_nodes
    series: dict[str, dict[float, float]] = {
        "disk swapping": {}, "simple swapping": {}, "remote update": {},
    }
    for mb in prep.scale.limits_mb:
        series["disk swapping"][mb] = _pass2_time(_run_cached(scale, "disk", 0, mb))
        series["simple swapping"][mb] = _pass2_time(_run_cached(scale, "remote", n_mem, mb))
        series["remote update"][mb] = _pass2_time(
            _run_cached(scale, "remote-update", n_mem, mb)
        )
    text = render_series(
        "usage limit [MB]",
        series,
        title=f"Figure 4 equivalent — pass 2 execution time [s], "
        f"{n_mem} memory-available nodes",
    )
    tight = prep.scale.limits_mb[0]
    return ExperimentReport(
        exp_id="F4",
        title="Comparison of proposed methods",
        text=text,
        data={
            "series": {k: dict(v) for k, v in series.items()},
            "disk_over_simple": series["disk swapping"][tight]
            / series["simple swapping"][tight],
            "simple_over_update": series["simple swapping"][tight]
            / series["remote update"][tight],
        },
        paper_shape="disk >> simple swapping >> remote update at every "
        "limit; remote update is nearly flat in the limit.",
    )


# ---------------------------------------------------------------------------
# Figure 5 — dynamic memory migration
# ---------------------------------------------------------------------------

def exp_fig5_migration(scale: str = "small") -> ExperimentReport:
    """Reproduce Figure 5: migrating 0/1/2 memory nodes away mid-run
    changes execution time only marginally."""
    prep = prepare_workload(scale)
    n_mem = prep.scale.max_memory_nodes
    series: dict[str, dict[float, float]] = {
        "all memory nodes available": {},
        "1 memory node unavailable": {},
        "2 memory nodes unavailable": {},
    }
    for mb in prep.scale.limits_mb:
        base = _run_cached(scale, "remote-update", n_mem, mb)
        p2 = base.pass_result(2)
        series["all memory nodes available"][mb] = p2.duration_s
        # Signal shortages inside pass 2's counting phase.
        t1 = p2.start_time + 0.4 * p2.duration_s
        t2 = p2.start_time + 0.6 * p2.duration_s
        one = _run_cached(scale, "remote-update", n_mem, mb, shortages=((t1, 0),))
        series["1 memory node unavailable"][mb] = _pass2_time(one)
        two = _run_cached(
            scale, "remote-update", n_mem, mb, shortages=((t1, 0), (t2, 1))
        )
        series["2 memory nodes unavailable"][mb] = _pass2_time(two)
    text = render_series(
        "usage limit [MB]",
        series,
        title=f"Figure 5 equivalent — pass 2 execution time [s] with "
        f"mid-run shortages, {n_mem} memory-available nodes",
    )
    tight = prep.scale.limits_mb[0]
    overhead = (
        series["2 memory nodes unavailable"][tight]
        / series["all memory nodes available"][tight]
    )
    return ExperimentReport(
        exp_id="F5",
        title="Dynamic memory migration on memory-available nodes",
        text=text,
        data={
            "series": {k: dict(v) for k, v in series.items()},
            "worst_overhead_ratio": overhead,
        },
        paper_shape="the three curves nearly coincide: migration overhead "
        "is almost negligible.",
    )


# ---------------------------------------------------------------------------
# §5.2 — disk access-time analysis
# ---------------------------------------------------------------------------

def exp_disk_access_analysis(scale: str = "small") -> ExperimentReport:
    """Reproduce §5.2's closing arithmetic: remote memory vs disks."""
    rows = disk_comparison()
    text = render_table(
        ["device", "seek [ms]", "rotation [ms]", "access [ms]", "x remote"],
        [
            (r.device, r.seek_s * 1e3, r.rotation_s * 1e3,
             r.access_time_s * 1e3, r.ratio_vs_remote)
            for r in rows
        ],
        title="§5.2 equivalent — average random 4KB read",
    )
    return ExperimentReport(
        exp_id="S52",
        title="Remote-memory pagefault vs disk access time",
        text=text,
        data={r.device: r.access_time_s for r in rows},
        paper_shape=">=13.0 ms for the 7200rpm disk, >=7.5 ms for the "
        "12000rpm disk, vs ~2.3 ms remote.",
    )


# ---------------------------------------------------------------------------
# §5.4 — monitoring-interval sensitivity (ablation)
# ---------------------------------------------------------------------------

def exp_monitor_interval(scale: str = "small") -> ExperimentReport:
    """Reproduce §5.4's claim: 1-3 s intervals are free, very short
    intervals cost monitoring/communication overhead."""
    prep = prepare_workload(scale)
    n_mem = prep.scale.max_memory_nodes
    mb = prep.scale.limits_mb[1]
    intervals = (0.02, 0.1, 1.0, 3.0, 10.0)
    times = {
        i: _pass2_time(_run_cached(scale, "remote", n_mem, mb, monitor_interval_s=i))
        for i in intervals
    }
    text = render_series(
        "monitor interval [s]",
        {"pass 2 time [s]": times},
        title=f"§5.4 equivalent — limit {mb:g}MB, {n_mem} memory nodes",
    )
    return ExperimentReport(
        exp_id="S54",
        title="Sensitivity to the availability-monitoring interval",
        text=text,
        data={"times": dict(times)},
        paper_shape="flat at 1-3 s; overhead appears only for very short "
        "intervals.",
    )


# ---------------------------------------------------------------------------
# Ablation A1 — replacement policy
# ---------------------------------------------------------------------------

def exp_ablation_policy(scale: str = "small") -> ExperimentReport:
    """Quantify the paper's LRU choice against FIFO and random."""
    prep = prepare_workload(scale)
    n_mem = prep.scale.max_memory_nodes
    mb = prep.scale.limits_mb[0]
    rows = []
    data = {}
    for policy in ("lru", "fifo", "random"):
        res = _run_cached(scale, "remote", n_mem, mb, replacement=policy)
        p2 = res.pass_result(2)
        rows.append((policy, p2.duration_s, p2.max_faults))
        data[policy] = {"time_s": p2.duration_s, "max_faults": p2.max_faults}
    text = render_table(
        ["policy", "pass 2 time [s]", "max faults"],
        rows,
        title=f"Ablation — replacement policy at limit {mb:g}MB",
    )
    return ExperimentReport(
        exp_id="A1",
        title="Replacement-policy ablation (paper uses LRU)",
        text=text,
        data=data,
        paper_shape="the paper asserts LRU; with near-uniform hash-line "
        "access the policies should be close, with LRU never worst.",
    )


# ---------------------------------------------------------------------------
# Ablation A2 — message block size
# ---------------------------------------------------------------------------

def exp_ablation_blocksize(scale: str = "small") -> ExperimentReport:
    """Vary the 4 KB message block of §5.1."""
    prep = prepare_workload(scale)
    n_mem = prep.scale.max_memory_nodes
    mb = prep.scale.limits_mb[0]
    sizes = (1024, 4096, 16384)
    series: dict[str, dict[int, float]] = {"simple swapping": {}, "remote update": {}}
    for size in sizes:
        series["simple swapping"][size] = _pass2_time(
            _run_cached(scale, "remote", n_mem, mb, message_block_bytes=size)
        )
        series["remote update"][size] = _pass2_time(
            _run_cached(scale, "remote-update", n_mem, mb, message_block_bytes=size)
        )
    text = render_series(
        "message block [B]",
        series,
        title=f"Ablation — message block size at limit {mb:g}MB",
    )
    return ExperimentReport(
        exp_id="A2",
        title="Message-block-size ablation (paper uses 4 KB)",
        text=text,
        data={k: dict(v) for k, v in series.items()},
        paper_shape="larger blocks inflate per-fault transmission for "
        "simple swapping; remote update amortises either way.",
    )


# ---------------------------------------------------------------------------
# Ablation A3 — HPA-ELD skew handling
# ---------------------------------------------------------------------------

def exp_ablation_eld(scale: str = "small") -> ExperimentReport:
    """The skew-handling extension the paper cites: duplicate the most
    frequent candidates everywhere, count them locally."""
    prep = prepare_workload(scale)
    n_mem = prep.scale.max_memory_nodes
    mb = prep.scale.limits_mb[1]
    fractions = (0.0, 0.02, 0.1, 0.3)
    rows = []
    data = {}
    for frac in fractions:
        res = _run_cached(
            scale, "remote-update", n_mem, mb, eld_fraction=frac
        )
        p2 = res.pass_result(2)
        rows.append(
            (f"{frac:g}", p2.n_duplicated, p2.count_messages, p2.duration_s)
        )
        data[frac] = {
            "duplicated": p2.n_duplicated,
            "count_messages": p2.count_messages,
            "time_s": p2.duration_s,
        }
    text = render_table(
        ["ELD fraction", "duplicated", "count messages", "pass 2 time [s]"],
        rows,
        title=f"Ablation — HPA-ELD duplication at limit {mb:g}MB",
    )
    return ExperimentReport(
        exp_id="A3",
        title="HPA-ELD frequent-candidate duplication (cited skew handling)",
        text=text,
        data=data,
        paper_shape="duplicating the most frequent candidates removes a "
        "disproportionate share of itemset traffic; results unchanged.",
    )


# ---------------------------------------------------------------------------
# Ablation A4 — UBR cell loss / TCP retransmission
# ---------------------------------------------------------------------------

def exp_ablation_loss(scale: str = "small") -> ExperimentReport:
    """Extension: the cluster runs TCP over ATM's UBR class; quantify how
    segment loss (and the retransmission timeout it triggers) erodes the
    remote-memory advantage."""
    prep = prepare_workload(scale)
    n_mem = prep.scale.max_memory_nodes
    mb = prep.scale.limits_mb[1]
    losses = (0.0, 0.001, 0.01)
    rows = []
    data = {}
    for loss in losses:
        res = _run_cached(
            scale, "remote", n_mem, mb, loss_probability=loss
        )
        p2 = res.pass_result(2)
        rows.append((f"{loss:g}", p2.duration_s))
        data[loss] = p2.duration_s
    text = render_table(
        ["loss probability", "pass 2 time [s]"],
        rows,
        title=f"Ablation — UBR segment loss at limit {mb:g}MB, simple swapping",
    )
    return ExperimentReport(
        exp_id="A4",
        title="Segment loss / TCP retransmission sensitivity",
        text=text,
        data=data,
        paper_shape="loss inflates execution time through retransmission "
        "timeouts, superlinearly in the loss rate.",
    )


# ---------------------------------------------------------------------------
# Baseline — NPA vs HPA under shrinking memory (§2.2's motivation)
# ---------------------------------------------------------------------------

def exp_npa_comparison(scale: str = "small") -> ExperimentReport:
    """Quantify §2.2's claim that HPA "effectively utilizes the whole
    memory space of all the processors": NPA duplicates the candidate set
    on every node and collapses first as the per-node limit shrinks."""
    prep = prepare_workload(scale)
    s = prep.scale
    n_mem = s.max_memory_nodes
    series: dict[str, dict[str, float]] = {"HPA": {}, "NPA": {}}
    data: dict = {}

    labels = ["no limit"] + [f"{mb:g}MB" for mb in s.limits_mb]
    for label, mb in zip(labels, [None, *s.limits_mb]):
        if mb is not None:
            hpa = _run_cached(scale, "remote-update", n_mem, mb)
            npa = _run_cached(scale, "remote-update", n_mem, mb, driver="npa")
        else:
            hpa = _run_cached(scale, "none", 0, None)
            npa = _run_cached(scale, "none", 0, None, driver="npa")
        series["HPA"][label] = hpa.pass_result(2).duration_s
        series["NPA"][label] = npa.pass_result(2).duration_s
        data[label] = {
            "hpa_s": hpa.pass_result(2).duration_s,
            "npa_s": npa.pass_result(2).duration_s,
            "npa_swaps": max(npa.pass_result(2).swap_outs_per_node),
            "hpa_swaps": max(hpa.pass_result(2).swap_outs_per_node),
        }
    text = render_series(
        "usage limit",
        series,
        title="Baseline — NPA (full duplication) vs HPA (hash partitioned), "
        "pass 2 time [s], remote update paging",
    )
    return ExperimentReport(
        exp_id="B1",
        title="NPA vs HPA under a per-node memory-usage limit",
        text=text,
        data=data,
        paper_shape="NPA's duplicated candidate set overflows the limit "
        "long before HPA's 1/n share does, so its curve climbs much "
        "faster as the limit tightens.",
    )


# ---------------------------------------------------------------------------
# Hot path — host wall-clock of the counting kernels vs the naive loops
# ---------------------------------------------------------------------------

def exp_hotpath(scale: str = "small") -> ExperimentReport:
    """Benchmark the vectorized counting kernels against the naive
    per-occurrence loops and verify bit-identical simulated behaviour.

    Unlike every other experiment here, this one measures *host*
    wall-clock, not simulated time — the kernels are required to leave
    every simulated quantity untouched, which the result hash checks.
    """
    from repro.harness.hotpath import render_hotpath, run_hotpath

    data = run_hotpath(scale)
    return ExperimentReport(
        exp_id="HP",
        title="Counting-kernel hot-path speedup (host wall-clock)",
        text=render_hotpath(data),
        data=data,
        paper_shape="simulated results identical between kernels; host "
        "wall-clock of pass-2 counting drops >=3x at the default scale.",
    )


# ---------------------------------------------------------------------------
# Scaling — speedup with application nodes (paper §3.3's claim)
# ---------------------------------------------------------------------------

def exp_scaling(scale: str = "small") -> ExperimentReport:
    """Speedup of the (no-limit) HPA run as application nodes are added.

    §3.3: "When the PC cluster using 100 PCs is employed for this
    problem, reasonably good performance improvement is [obtained]".
    We sweep node counts and report pass-2 speedup vs one node.
    """
    prep = prepare_workload(scale)
    s = prep.scale
    counts = [n for n in (1, 2, 4, 8) if n <= max(8, s.n_app_nodes)]
    times = {}
    for n in counts:
        res = run_scenario(
            Scenario(
                scale=scale,
                n_app_nodes=n,
                total_lines=(s.total_lines // n) * n or n,
            )
        )
        times[n] = res.pass_result(2).duration_s
    base = times[counts[0]]
    rows = [
        (n, times[n], base / times[n], (base / times[n]) / n)
        for n in counts
    ]
    text = render_table(
        ["nodes", "pass 2 time [s]", "speedup", "efficiency"],
        rows,
        title=f"Scaling — {s.workload}, no memory limit",
    )
    return ExperimentReport(
        exp_id="SC",
        title="HPA speedup with application nodes",
        text=text,
        data={"times": times, "speedup": {n: base / times[n] for n in counts}},
        paper_shape="near-linear speedup while communication stays off the "
        "critical path.",
    )


#: Registry used by the CLI and the benchmark suite.
ALL_EXPERIMENTS = {
    "table2": exp_table2_pass_profile,
    "table3": exp_table3_partition_skew,
    "table4": exp_table4_pagefault_cost,
    "fig3": exp_fig3_memory_nodes,
    "fig4": exp_fig4_method_comparison,
    "fig5": exp_fig5_migration,
    "disk": exp_disk_access_analysis,
    "monitor": exp_monitor_interval,
    "policy": exp_ablation_policy,
    "blocksize": exp_ablation_blocksize,
    "eld": exp_ablation_eld,
    "loss": exp_ablation_loss,
    "scaling": exp_scaling,
    "npa": exp_npa_comparison,
    "hotpath": exp_hotpath,
}
