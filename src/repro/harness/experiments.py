"""Every paper table/figure as a declarative :class:`Sweep`.

One experiment = one :class:`~repro.harness.sweep.Sweep`: a data-driven
grid of :class:`~repro.runtime.scenarios.Scenario` variations plus a
report builder that folds the keyed results into an
:class:`~repro.harness.sweep.ExperimentReport` (the same table/series
the paper prints, plus machine-readable ``data``).  The sweep engine
(:mod:`repro.harness.sweep.engine`) owns execution: cache tiers, the
persistent result store, and the ``--jobs N`` process pool.  There is
exactly one execution path — :func:`repro.runtime.run_scenario` — for
the experiments, benchmarks, CLI, and examples alike.

Each sweep's ``doc`` is the paper-vs-measured narrative from which
``EXPERIMENTS.md`` is regenerated
(``python -m repro.harness.sweep.docs``).

The historical ``exp_*`` names remain importable and callable
(``exp_fig4_method_comparison("small")``): a :class:`Sweep` called with
a scale name runs itself serially and returns its report.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.analysis import (
    disk_comparison,
    pagefault_row,
    predicted_fault_time_s,
    render_kv,
    render_series,
    render_table,
)
from repro.analysis.cost_model import PAPER_COSTS
from repro.cluster.specs import ATM_155
from repro.datagen import generate
from repro.harness.scales import SCALES, prepare_workload
from repro.harness.sweep import ExperimentReport, Sweep
from repro.mining import apriori, skew_statistics
from repro.runtime.results import RunResult
from repro.runtime.scenarios import Scenario

__all__ = [
    "ExperimentReport",
    "exp_table2_pass_profile",
    "exp_table3_partition_skew",
    "exp_table4_pagefault_cost",
    "exp_fig3_memory_nodes",
    "exp_fig4_method_comparison",
    "exp_fig5_migration",
    "exp_disk_access_analysis",
    "exp_monitor_interval",
    "exp_ablation_policy",
    "exp_churn_dynamics",
    "exp_ablation_blocksize",
    "exp_ablation_eld",
    "exp_ablation_loss",
    "exp_scaling",
    "exp_npa_comparison",
    "exp_hotpath",
    "ALL_SWEEPS",
    "ALL_EXPERIMENTS",
]

Results = Mapping[str, RunResult]


def _pass2_time(res: RunResult) -> float:
    return res.pass_result(2).duration_s


def _limit_label(mb: Optional[float]) -> str:
    return "no limit" if mb is None else f"{mb:g}MB"


# ---------------------------------------------------------------------------
# Table 2 — candidate / large itemsets at each pass (analytic)
# ---------------------------------------------------------------------------

#: Table 2 mines at a stiffer support than the swapping experiments so
#: that later passes shrink sharply, matching the paper's cliff; the
#: multi-seed report layer (repro.analysis.report) replays the same
#: mining per seed and must use the same factor.
TABLE2_MINSUP_FACTOR = 2.5


def _report_table2(scale: str, results: Results) -> ExperimentReport:
    """The paper mines 10 M transactions at 0.7 % support; pass 2's
    candidate count dwarfs every other pass and the run dies out by
    pass 5.  We mine a scaled workload at a support chosen to terminate
    naturally within a few passes."""
    s = SCALES[scale]
    db = generate(s.workload, n_items=s.n_items, seed=s.seed)
    minsup = s.minsup * TABLE2_MINSUP_FACTOR
    res = apriori(db, minsup=minsup)
    rows = [
        (f"pass {k}", "" if c is None else c, l)
        for k, c, l in res.table2_rows()
    ]
    c2 = res.passes[1].n_candidates if len(res.passes) > 1 else 0
    later = max((p.n_candidates for p in res.passes[2:]), default=0)
    text = render_table(
        ["pass", "C (candidates)", "L (large)"],
        rows,
        title=f"Table 2 equivalent — {s.workload}, {s.n_items} items, minsup={minsup:g}",
    )
    return ExperimentReport(
        exp_id="T2",
        title="Number of candidate and large itemsets at each pass",
        text=text,
        data={
            "rows": res.table2_rows(),
            "c2": c2,
            "max_later_candidates": later,
            "c2_dominates": later < c2,
        },
        paper_shape="C2 >> C_k for all k>2; iteration terminates when "
        "large/candidate itemsets run out (paper: 522753 candidates in "
        "pass 2 vs <=19 afterwards).",
    )


# ---------------------------------------------------------------------------
# Table 3 — candidate 2-itemsets per node (analytic)
# ---------------------------------------------------------------------------

def _report_table3(scale: str, results: Results) -> ExperimentReport:
    """Per-node candidate counts are close but skewed (Table 3)."""
    prep = prepare_workload(scale)
    stats = skew_statistics(prep.per_node_candidates)
    rows = [
        (f"node {i + 1}", c) for i, c in enumerate(prep.per_node_candidates)
    ]
    text = "\n".join(
        [
            render_table(
                ["node", "candidate 2-itemsets"],
                rows,
                title=f"Table 3 equivalent — {prep.scale.workload}, "
                f"{prep.n_candidates_2} candidates over "
                f"{prep.scale.n_app_nodes} nodes",
            ),
            render_kv(
                {
                    "mean": stats.mean,
                    "max": stats.maximum,
                    "min": stats.minimum,
                    "max/mean": stats.max_over_mean,
                    "coeff. of variation": stats.coefficient_of_variation,
                }
            ),
        ]
    )
    return ExperimentReport(
        exp_id="T3",
        title="Number of candidate 2-itemsets at each node",
        text=text,
        data={
            "per_node": list(prep.per_node_candidates),
            "max_over_mean": stats.max_over_mean,
        },
        paper_shape="counts near-equal but unequal (paper: 582149..641243 "
        "around a 608985 mean, ~5% skew).",
    )


# ---------------------------------------------------------------------------
# Table 4 — execution time of each pagefault
# ---------------------------------------------------------------------------

def _grid_table4(scale: str) -> "dict[str, Scenario]":
    s = SCALES[scale]
    n_mem = s.max_memory_nodes
    cells = {
        "no limit": Scenario(
            scale=scale, pager="remote", n_memory_nodes=n_mem
        )
    }
    for mb in s.limits_mb:
        cells[_limit_label(mb)] = Scenario(
            scale=scale, pager="remote", n_memory_nodes=n_mem, paper_mb=mb
        )
    return cells


def _report_table4(scale: str, results: Results) -> ExperimentReport:
    """Per-pagefault time from the Exec/Diff/Max columns (Table 4)."""
    prep = prepare_workload(scale)
    n_mem = prep.scale.max_memory_nodes
    baseline = _pass2_time(results["no limit"])
    rows = []
    per_fault = {}
    for mb in prep.scale.limits_mb:
        p2 = results[_limit_label(mb)].pass_result(2)
        row = pagefault_row(f"{mb:g}MB", p2.duration_s, baseline, p2.max_faults)
        rows.append(row)
        per_fault[mb] = row.per_fault_s
    predicted = predicted_fault_time_s(PAPER_COSTS, ATM_155)
    text = "\n".join(
        [
            render_table(
                ["usage limit", "Exec [s]", "Diff [s]", "Max faults", "PF [ms]"],
                [
                    (r.label, r.exec_time_s, r.diff_time_s, r.max_faults,
                     r.per_fault_s * 1e3)
                    for r in rows
                ],
                title=f"Table 4 equivalent — {n_mem} memory-available nodes, "
                f"no-limit baseline {baseline:.1f}s",
            ),
            f"analytic decomposition (RTT + 4KB transmit + service): "
            f"{predicted * 1e3:.2f} ms",
        ]
    )
    return ExperimentReport(
        exp_id="T4",
        title="Execution time of each pagefault",
        text=text,
        data={
            "baseline_s": baseline,
            "per_fault_ms": {mb: v * 1e3 for mb, v in per_fault.items()},
            "predicted_ms": predicted * 1e3,
        },
        paper_shape="PF time ~2.2-2.4 ms, roughly constant across limits "
        "(paper: 2.37/2.33/2.22/1.90 ms), decomposed as 0.5 ms RTT + "
        "0.3 ms transmit + ~1.5 ms service.",
    )


# ---------------------------------------------------------------------------
# Figure 3 — execution time vs number of memory-available nodes
# ---------------------------------------------------------------------------

def _grid_fig3(scale: str) -> "dict[str, Scenario]":
    s = SCALES[scale]
    return {
        f"{_limit_label(mb)}|n={n}": Scenario(
            scale=scale, pager="remote", n_memory_nodes=n, paper_mb=mb
        )
        for mb in (*s.limits_mb, None)
        for n in s.memory_node_counts
    }


def _report_fig3(scale: str, results: Results) -> ExperimentReport:
    """Few memory nodes bottleneck the fault service (Figure 3)."""
    prep = prepare_workload(scale)
    series: dict[str, dict[int, float]] = {}
    for mb in prep.scale.limits_mb:
        series[f"limit {mb:g}MB"] = {
            n: _pass2_time(results[f"{_limit_label(mb)}|n={n}"])
            for n in prep.scale.memory_node_counts
        }
    series["no limit"] = {
        n: _pass2_time(results[f"no limit|n={n}"])
        for n in prep.scale.memory_node_counts
    }
    text = render_series(
        "#memory nodes",
        series,
        title=f"Figure 3 equivalent — pass 2 execution time [s], "
        f"{prep.scale.n_app_nodes} application nodes",
    )
    tight = f"limit {prep.scale.limits_mb[0]:g}MB"
    n_min, n_max = min(prep.scale.memory_node_counts), max(prep.scale.memory_node_counts)
    return ExperimentReport(
        exp_id="F3",
        title="Execution time of HPA (pass 2) vs memory-available nodes",
        text=text,
        data={
            "series": {k: dict(v) for k, v in series.items()},
            "bottleneck_ratio": series[tight][n_min] / series[tight][n_max],
        },
        paper_shape="curves fall steeply from 1 memory node and flatten by "
        "8-16; lower limits sit higher; the no-limit curve is flat and "
        "lowest.",
    )


# ---------------------------------------------------------------------------
# Figure 4 — disk vs simple swapping vs remote update
# ---------------------------------------------------------------------------

def _grid_fig4(scale: str) -> "dict[str, Scenario]":
    s = SCALES[scale]
    n_mem = s.max_memory_nodes
    cells: "dict[str, Scenario]" = {}
    for mb in s.limits_mb:
        cells[f"disk|{mb:g}"] = Scenario(scale=scale, pager="disk", paper_mb=mb)
        cells[f"simple|{mb:g}"] = Scenario(
            scale=scale, pager="remote", n_memory_nodes=n_mem, paper_mb=mb
        )
        cells[f"update|{mb:g}"] = Scenario(
            scale=scale, pager="remote-update", n_memory_nodes=n_mem, paper_mb=mb
        )
    return cells


def _report_fig4(scale: str, results: Results) -> ExperimentReport:
    """The three swapping mechanisms vs usage limit (Figure 4)."""
    prep = prepare_workload(scale)
    n_mem = prep.scale.max_memory_nodes
    series: dict[str, dict[float, float]] = {
        "disk swapping": {}, "simple swapping": {}, "remote update": {},
    }
    for mb in prep.scale.limits_mb:
        series["disk swapping"][mb] = _pass2_time(results[f"disk|{mb:g}"])
        series["simple swapping"][mb] = _pass2_time(results[f"simple|{mb:g}"])
        series["remote update"][mb] = _pass2_time(results[f"update|{mb:g}"])
    text = render_series(
        "usage limit [MB]",
        series,
        title=f"Figure 4 equivalent — pass 2 execution time [s], "
        f"{n_mem} memory-available nodes",
    )
    tight = prep.scale.limits_mb[0]
    return ExperimentReport(
        exp_id="F4",
        title="Comparison of proposed methods",
        text=text,
        data={
            "series": {k: dict(v) for k, v in series.items()},
            "disk_over_simple": series["disk swapping"][tight]
            / series["simple swapping"][tight],
            "simple_over_update": series["simple swapping"][tight]
            / series["remote update"][tight],
        },
        paper_shape="disk >> simple swapping >> remote update at every "
        "limit; remote update is nearly flat in the limit.",
    )


# ---------------------------------------------------------------------------
# Figure 5 — dynamic memory migration
# ---------------------------------------------------------------------------

def _grid_fig5(scale: str) -> "dict[str, Scenario]":
    s = SCALES[scale]
    n_mem = s.max_memory_nodes
    return {
        f"base|{mb:g}": Scenario(
            scale=scale, pager="remote-update", n_memory_nodes=n_mem, paper_mb=mb
        )
        for mb in s.limits_mb
    }


def _followups_fig5(scale: str, results: Results) -> "dict[str, Scenario]":
    """Derived stage: shortages are scheduled *inside* the measured pass
    of each base run (40 % and 60 % of pass 2), so their injection times
    come from stage-1 results."""
    s = SCALES[scale]
    n_mem = s.max_memory_nodes
    cells: "dict[str, Scenario]" = {}
    for mb in s.limits_mb:
        p2 = results[f"base|{mb:g}"].pass_result(2)
        t1 = p2.start_time + 0.4 * p2.duration_s
        t2 = p2.start_time + 0.6 * p2.duration_s
        cells[f"one|{mb:g}"] = Scenario(
            scale=scale, pager="remote-update", n_memory_nodes=n_mem,
            paper_mb=mb, shortages=((t1, 0),),
        )
        cells[f"two|{mb:g}"] = Scenario(
            scale=scale, pager="remote-update", n_memory_nodes=n_mem,
            paper_mb=mb, shortages=((t1, 0), (t2, 1)),
        )
    return cells


def _report_fig5(scale: str, results: Results) -> ExperimentReport:
    """Migrating 0/1/2 memory nodes away mid-run changes execution time
    only marginally (Figure 5)."""
    prep = prepare_workload(scale)
    n_mem = prep.scale.max_memory_nodes
    series: dict[str, dict[float, float]] = {
        "all memory nodes available": {},
        "1 memory node unavailable": {},
        "2 memory nodes unavailable": {},
    }
    for mb in prep.scale.limits_mb:
        series["all memory nodes available"][mb] = _pass2_time(
            results[f"base|{mb:g}"]
        )
        series["1 memory node unavailable"][mb] = _pass2_time(
            results[f"one|{mb:g}"]
        )
        series["2 memory nodes unavailable"][mb] = _pass2_time(
            results[f"two|{mb:g}"]
        )
    text = render_series(
        "usage limit [MB]",
        series,
        title=f"Figure 5 equivalent — pass 2 execution time [s] with "
        f"mid-run shortages, {n_mem} memory-available nodes",
    )
    tight = prep.scale.limits_mb[0]
    overhead = (
        series["2 memory nodes unavailable"][tight]
        / series["all memory nodes available"][tight]
    )
    return ExperimentReport(
        exp_id="F5",
        title="Dynamic memory migration on memory-available nodes",
        text=text,
        data={
            "series": {k: dict(v) for k, v in series.items()},
            "worst_overhead_ratio": overhead,
        },
        paper_shape="the three curves nearly coincide: migration overhead "
        "is almost negligible.",
    )


# ---------------------------------------------------------------------------
# §5.2 — disk access-time analysis (analytic)
# ---------------------------------------------------------------------------

def _report_disk(scale: str, results: Results) -> ExperimentReport:
    """§5.2's closing arithmetic: remote memory vs disks."""
    rows = disk_comparison()
    text = render_table(
        ["device", "seek [ms]", "rotation [ms]", "access [ms]", "x remote"],
        [
            (r.device, r.seek_s * 1e3, r.rotation_s * 1e3,
             r.access_time_s * 1e3, r.ratio_vs_remote)
            for r in rows
        ],
        title="§5.2 equivalent — average random 4KB read",
    )
    return ExperimentReport(
        exp_id="S52",
        title="Remote-memory pagefault vs disk access time",
        text=text,
        data={r.device: r.access_time_s for r in rows},
        paper_shape=">=13.0 ms for the 7200rpm disk, >=7.5 ms for the "
        "12000rpm disk, vs ~2.3 ms remote.",
    )


# ---------------------------------------------------------------------------
# §5.4 — monitoring-interval sensitivity (ablation)
# ---------------------------------------------------------------------------

#: Intervals swept by the §5.4 sensitivity study (seconds).
MONITOR_INTERVALS_S = (0.02, 0.1, 1.0, 3.0, 10.0)


def _grid_monitor(scale: str) -> "dict[str, Scenario]":
    s = SCALES[scale]
    mb = s.limits_mb[1]
    return {
        f"interval={i:g}": Scenario(
            scale=scale, pager="remote", n_memory_nodes=s.max_memory_nodes,
            paper_mb=mb, monitor_interval_s=i,
        )
        for i in MONITOR_INTERVALS_S
    }


def _report_monitor(scale: str, results: Results) -> ExperimentReport:
    """§5.4's claim: 1-3 s intervals are free, very short intervals cost
    monitoring/communication overhead."""
    prep = prepare_workload(scale)
    n_mem = prep.scale.max_memory_nodes
    mb = prep.scale.limits_mb[1]
    times = {
        i: _pass2_time(results[f"interval={i:g}"]) for i in MONITOR_INTERVALS_S
    }
    text = render_series(
        "monitor interval [s]",
        {"pass 2 time [s]": times},
        title=f"§5.4 equivalent — limit {mb:g}MB, {n_mem} memory nodes",
    )
    return ExperimentReport(
        exp_id="S54",
        title="Sensitivity to the availability-monitoring interval",
        text=text,
        data={"times": dict(times)},
        paper_shape="flat at 1-3 s; overhead appears only for very short "
        "intervals.",
    )


# ---------------------------------------------------------------------------
# Ablation A1 — replacement policy
# ---------------------------------------------------------------------------

REPLACEMENT_SWEEP = ("lru", "fifo", "random")


def _grid_policy(scale: str) -> "dict[str, Scenario]":
    s = SCALES[scale]
    mb = s.limits_mb[0]
    return {
        policy: Scenario(
            scale=scale, pager="remote", n_memory_nodes=s.max_memory_nodes,
            paper_mb=mb, replacement=policy,
        )
        for policy in REPLACEMENT_SWEEP
    }


def _report_policy(scale: str, results: Results) -> ExperimentReport:
    """Quantify the paper's LRU choice against FIFO and random."""
    prep = prepare_workload(scale)
    mb = prep.scale.limits_mb[0]
    rows = []
    data = {}
    for policy in REPLACEMENT_SWEEP:
        p2 = results[policy].pass_result(2)
        rows.append((policy, p2.duration_s, p2.max_faults))
        data[policy] = {"time_s": p2.duration_s, "max_faults": p2.max_faults}
    text = render_table(
        ["policy", "pass 2 time [s]", "max faults"],
        rows,
        title=f"Ablation — replacement policy at limit {mb:g}MB",
    )
    return ExperimentReport(
        exp_id="A1",
        title="Replacement-policy ablation (paper uses LRU)",
        text=text,
        data=data,
        paper_shape="the paper asserts LRU; with near-uniform hash-line "
        "access the policies should be close, with LRU never worst.",
    )


# ---------------------------------------------------------------------------
# Cluster dynamics C1 — placement policy under churning availability
# ---------------------------------------------------------------------------

#: Every swap-destination policy competes (paper §4.3 prescribes only
#: the first).
PLACEMENT_SWEEP = (
    "most-available",
    "round-robin",
    "predictive",
    "load-balancing",
    "migrate-ahead",
)

#: Background-load regimes driving the memory nodes' ledgers
#: (:func:`repro.cluster.dynamics.parse_trace` specs).  ``calm`` never
#: disturbs anything (the policies' intrinsic spread); ``sawtooth``
#: ramps each node to a full reclaim on a staggered phase (gradual
#: declines — the predictive policies' habitat); ``bursty`` hits each
#: node with short random full reclaims (no warning at all).
CHURN_REGIMES = {
    "calm": "constant:frac=0.35",
    "sawtooth": "sawtooth:period=0.12,low=0.2,high=1,steps=6,stagger=1",
    "bursty": "bursty:gap=0.05,hold=0.015,frac=1",
}

#: Churn cells monitor faster than the paper's 1-3 s guidance scaled
#: down: prediction quality is bounded by broadcast cadence, and the
#: experiment compares policies, not monitoring overhead.
CHURN_MONITOR_INTERVAL_S = 0.02


def _grid_churn(scale: str) -> "dict[str, Scenario]":
    s = SCALES[scale]
    mb = s.limits_mb[1]
    cells: "dict[str, Scenario]" = {}
    for policy in PLACEMENT_SWEEP:
        for regime, spec in CHURN_REGIMES.items():
            cells[f"{policy}|{regime}"] = Scenario(
                scale=scale, pager="remote-update",
                n_memory_nodes=s.max_memory_nodes, paper_mb=mb,
                placement=policy, churn=spec,
                monitor_interval_s=CHURN_MONITOR_INTERVAL_S,
            )
    return cells


def _report_churn(scale: str, results: Results) -> ExperimentReport:
    """The paper's premise — remote memory fluctuates because owners
    reclaim their machines — exercised directly: every placement policy
    races the same churning cluster."""
    prep = prepare_workload(scale)
    mb = prep.scale.limits_mb[1]
    rows = []
    series: "dict[str, dict[str, float]]" = {}
    for policy in PLACEMENT_SWEEP:
        times = {
            regime: _pass2_time(results[f"{policy}|{regime}"])
            for regime in CHURN_REGIMES
        }
        series[policy] = times
        rows.append(
            (policy, *(times[regime] for regime in CHURN_REGIMES))
        )
    text = render_table(
        ["placement"] + [f"{regime} [s]" for regime in CHURN_REGIMES],
        rows,
        title=(
            f"Cluster dynamics — placement policy vs churn regime "
            f"at limit {mb:g}MB"
        ),
    )
    return ExperimentReport(
        exp_id="C1",
        title="Placement policies under churning memory availability",
        text=text,
        data={"series": series},
        paper_shape="the calm column should separate the policies least; "
        "under sawtooth/bursty churn, availability-aware policies should "
        "never trail round-robin.",
    )


# ---------------------------------------------------------------------------
# Ablation A2 — message block size
# ---------------------------------------------------------------------------

BLOCK_SIZES_B = (1024, 4096, 16384)


def _grid_blocksize(scale: str) -> "dict[str, Scenario]":
    s = SCALES[scale]
    n_mem = s.max_memory_nodes
    mb = s.limits_mb[0]
    cells: "dict[str, Scenario]" = {}
    for size in BLOCK_SIZES_B:
        cells[f"simple|{size}"] = Scenario(
            scale=scale, pager="remote", n_memory_nodes=n_mem, paper_mb=mb,
            message_block_bytes=size,
        )
        cells[f"update|{size}"] = Scenario(
            scale=scale, pager="remote-update", n_memory_nodes=n_mem,
            paper_mb=mb, message_block_bytes=size,
        )
    return cells


def _report_blocksize(scale: str, results: Results) -> ExperimentReport:
    """Vary the 4 KB message block of §5.1."""
    prep = prepare_workload(scale)
    mb = prep.scale.limits_mb[0]
    series: dict[str, dict[int, float]] = {"simple swapping": {}, "remote update": {}}
    for size in BLOCK_SIZES_B:
        series["simple swapping"][size] = _pass2_time(results[f"simple|{size}"])
        series["remote update"][size] = _pass2_time(results[f"update|{size}"])
    text = render_series(
        "message block [B]",
        series,
        title=f"Ablation — message block size at limit {mb:g}MB",
    )
    return ExperimentReport(
        exp_id="A2",
        title="Message-block-size ablation (paper uses 4 KB)",
        text=text,
        data={k: dict(v) for k, v in series.items()},
        paper_shape="larger blocks inflate per-fault transmission for "
        "simple swapping; remote update amortises either way.",
    )


# ---------------------------------------------------------------------------
# Ablation A3 — HPA-ELD skew handling
# ---------------------------------------------------------------------------

ELD_FRACTIONS = (0.0, 0.02, 0.1, 0.3)


def _grid_eld(scale: str) -> "dict[str, Scenario]":
    s = SCALES[scale]
    mb = s.limits_mb[1]
    return {
        f"eld={frac:g}": Scenario(
            scale=scale, pager="remote-update",
            n_memory_nodes=s.max_memory_nodes, paper_mb=mb, eld_fraction=frac,
        )
        for frac in ELD_FRACTIONS
    }


def _report_eld(scale: str, results: Results) -> ExperimentReport:
    """The skew-handling extension the paper cites: duplicate the most
    frequent candidates everywhere, count them locally."""
    prep = prepare_workload(scale)
    mb = prep.scale.limits_mb[1]
    rows = []
    data = {}
    for frac in ELD_FRACTIONS:
        p2 = results[f"eld={frac:g}"].pass_result(2)
        rows.append(
            (f"{frac:g}", p2.n_duplicated, p2.count_messages, p2.duration_s)
        )
        data[frac] = {
            "duplicated": p2.n_duplicated,
            "count_messages": p2.count_messages,
            "time_s": p2.duration_s,
        }
    text = render_table(
        ["ELD fraction", "duplicated", "count messages", "pass 2 time [s]"],
        rows,
        title=f"Ablation — HPA-ELD duplication at limit {mb:g}MB",
    )
    return ExperimentReport(
        exp_id="A3",
        title="HPA-ELD frequent-candidate duplication (cited skew handling)",
        text=text,
        data=data,
        paper_shape="duplicating the most frequent candidates removes a "
        "disproportionate share of itemset traffic; results unchanged.",
    )


# ---------------------------------------------------------------------------
# Ablation A4 — UBR cell loss / TCP retransmission
# ---------------------------------------------------------------------------

LOSS_PROBABILITIES = (0.0, 0.001, 0.01)


def _grid_loss(scale: str) -> "dict[str, Scenario]":
    s = SCALES[scale]
    mb = s.limits_mb[1]
    return {
        f"loss={loss:g}": Scenario(
            scale=scale, pager="remote", n_memory_nodes=s.max_memory_nodes,
            paper_mb=mb, loss_probability=loss,
        )
        for loss in LOSS_PROBABILITIES
    }


def _report_loss(scale: str, results: Results) -> ExperimentReport:
    """Extension: the cluster runs TCP over ATM's UBR class; quantify how
    segment loss (and the retransmission timeout it triggers) erodes the
    remote-memory advantage."""
    prep = prepare_workload(scale)
    mb = prep.scale.limits_mb[1]
    rows = []
    data = {}
    for loss in LOSS_PROBABILITIES:
        p2 = results[f"loss={loss:g}"].pass_result(2)
        rows.append((f"{loss:g}", p2.duration_s))
        data[loss] = p2.duration_s
    text = render_table(
        ["loss probability", "pass 2 time [s]"],
        rows,
        title=f"Ablation — UBR segment loss at limit {mb:g}MB, simple swapping",
    )
    return ExperimentReport(
        exp_id="A4",
        title="Segment loss / TCP retransmission sensitivity",
        text=text,
        data=data,
        paper_shape="loss inflates execution time through retransmission "
        "timeouts, superlinearly in the loss rate.",
    )


# ---------------------------------------------------------------------------
# Baseline — NPA vs HPA under shrinking memory (§2.2's motivation)
# ---------------------------------------------------------------------------

def _grid_npa(scale: str) -> "dict[str, Scenario]":
    s = SCALES[scale]
    n_mem = s.max_memory_nodes
    cells: "dict[str, Scenario]" = {}
    for driver in ("hpa", "npa"):
        cells[f"{driver}|no limit"] = Scenario(driver=driver, scale=scale)
        for mb in s.limits_mb:
            cells[f"{driver}|{mb:g}MB"] = Scenario(
                driver=driver, scale=scale, pager="remote-update",
                n_memory_nodes=n_mem, paper_mb=mb,
            )
    return cells


def _report_npa(scale: str, results: Results) -> ExperimentReport:
    """Quantify §2.2's claim that HPA "effectively utilizes the whole
    memory space of all the processors": NPA duplicates the candidate set
    on every node and collapses first as the per-node limit shrinks."""
    s = SCALES[scale]
    series: dict[str, dict[str, float]] = {"HPA": {}, "NPA": {}}
    data: dict = {}
    labels = ["no limit"] + [f"{mb:g}MB" for mb in s.limits_mb]
    for label in labels:
        hpa = results[f"hpa|{label}"]
        npa = results[f"npa|{label}"]
        series["HPA"][label] = hpa.pass_result(2).duration_s
        series["NPA"][label] = npa.pass_result(2).duration_s
        data[label] = {
            "hpa_s": hpa.pass_result(2).duration_s,
            "npa_s": npa.pass_result(2).duration_s,
            "npa_swaps": max(npa.pass_result(2).swap_outs_per_node),
            "hpa_swaps": max(hpa.pass_result(2).swap_outs_per_node),
        }
    text = render_series(
        "usage limit",
        series,
        title="Baseline — NPA (full duplication) vs HPA (hash partitioned), "
        "pass 2 time [s], remote update paging",
    )
    return ExperimentReport(
        exp_id="B1",
        title="NPA vs HPA under a per-node memory-usage limit",
        text=text,
        data=data,
        paper_shape="NPA's duplicated candidate set overflows the limit "
        "long before HPA's 1/n share does, so its curve climbs much "
        "faster as the limit tightens.",
    )


# ---------------------------------------------------------------------------
# Scaling — speedup with application nodes (paper §3.3's claim)
# ---------------------------------------------------------------------------

def _scaling_counts(scale: str) -> "list[int]":
    s = SCALES[scale]
    return [n for n in (1, 2, 4, 8) if n <= max(8, s.n_app_nodes)]


def _grid_scaling(scale: str) -> "dict[str, Scenario]":
    s = SCALES[scale]
    return {
        f"n={n}": Scenario(
            scale=scale,
            n_app_nodes=n,
            total_lines=(s.total_lines // n) * n or n,
        )
        for n in _scaling_counts(scale)
    }


def _report_scaling(scale: str, results: Results) -> ExperimentReport:
    """Speedup of the (no-limit) HPA run as application nodes are added.

    §3.3: "When the PC cluster using 100 PCs is employed for this
    problem, reasonably good performance improvement is [obtained]".
    """
    s = SCALES[scale]
    counts = _scaling_counts(scale)
    times = {n: results[f"n={n}"].pass_result(2).duration_s for n in counts}
    base = times[counts[0]]
    rows = [
        (n, times[n], base / times[n], (base / times[n]) / n)
        for n in counts
    ]
    text = render_table(
        ["nodes", "pass 2 time [s]", "speedup", "efficiency"],
        rows,
        title=f"Scaling — {s.workload}, no memory limit",
    )
    return ExperimentReport(
        exp_id="SC",
        title="HPA speedup with application nodes",
        text=text,
        data={"times": times, "speedup": {n: base / times[n] for n in counts}},
        paper_shape="near-linear speedup while communication stays off the "
        "critical path.",
    )


# ---------------------------------------------------------------------------
# Hot path — host wall-clock of the counting kernels vs the naive loops
# ---------------------------------------------------------------------------

def _report_hotpath(scale: str, results: Results) -> ExperimentReport:
    """Benchmark the vectorized counting kernels against the naive
    per-occurrence loops and verify bit-identical simulated behaviour.

    Unlike every other experiment here, this one measures *host*
    wall-clock, not simulated time — the kernels are required to leave
    every simulated quantity untouched, which the result hash checks.
    """
    from repro.harness.hotpath import render_hotpath, run_hotpath

    data = run_hotpath(scale)
    return ExperimentReport(
        exp_id="HP",
        title="Counting-kernel hot-path speedup (host wall-clock)",
        text=render_hotpath(data),
        data=data,
        paper_shape="simulated results identical between kernels; host "
        "wall-clock of pass-2 counting drops >=3x at the default scale.",
    )


def _empty_grid(scale: str) -> "dict[str, Scenario]":
    """Grid of the analytic experiments (no simulated runs)."""
    return {}


# ---------------------------------------------------------------------------
# The registry: every paper artifact as a Sweep
# ---------------------------------------------------------------------------

#: The declarative experiment registry, in the paper's presentation
#: order.  Values are callable (``ALL_SWEEPS["fig4"]("small")``).
ALL_SWEEPS: "dict[str, Sweep]" = {
    sweep.name: sweep
    for sweep in (
        Sweep(
            name="table2",
            exp_id="T2",
            title="Table 2 — candidate and large itemsets at each pass",
            grid=_empty_grid,
            report=_report_table2,
            doc="""\
Paper (10 M txns, 5 000 items, minsup 0.7 %):

| pass | C | L |
|---|---|---|
| 1 | — | 1023 |
| 2 | 522 753 | 32 |
| 3 | 19 | 19 |
| 4 | 7 | 7 |
| 5 | 1 | 0 |

Measured (T10.I4.D1K, 250 items, minsup 2.5 %):

| pass | C | L |
|---|---|---|
| 1 | — | 139 |
| 2 | 9 591 | 126 |
| 3 | 97 | 19 |
| 4 | 7 | 5 |
| 5 | 1 | 0 |

**Shape held:** C₂ exceeds every later candidate count by ~100×, and the
iteration terminates naturally at pass 5 — the pass-2 memory explosion
that motivates the whole system.""",
        ),
        Sweep(
            name="table3",
            exp_id="T3",
            title="Table 3 — candidate 2-itemsets per node",
            grid=_empty_grid,
            report=_report_table3,
            doc="""\
Paper (4 871 881 candidates over 8 nodes): 582 149 … 641 243 per node,
mean 608 985 — near-equal with ~5 % skew.

Measured (17 391 candidates over 4 nodes): 4 325 … 4 381, mean 4 348,
max/mean 1.01, CV 0.5 %.

**Shape held:** hash partitioning spreads candidates nearly but not
exactly evenly. (Our skew is milder because an FNV-mixed hash over a
smaller, less skewed pattern pool partitions more uniformly than the
paper's hash did; the qualitative claim — "the numbers at each node are
not equal" — reproduces.)""",
        ),
        Sweep(
            name="table4",
            exp_id="T4",
            title="Table 4 — execution time of each pagefault",
            grid=_grid_table4,
            report=_report_table4,
            doc="""\
Paper (16 memory-available nodes, baseline 247.0 s):

| limit | Exec [s] | Diff [s] | Max faults | PF [ms] |
|---|---|---|---|---|
| 12 MB | 7 183.1 | 6 936.1 | 2 925 243 | 2.37 |
| 13 MB | 4 674.0 | 4 427.0 | 1 896 226 | 2.33 |
| 14 MB | 2 489.7 | 2 242.7 | 1 003 757 | 2.22 |
| 15 MB | 757.3 | 510.3 | 268 093 | 1.90 |

Measured (8 memory-available nodes, baseline 0.48 s):

| limit | Exec [s] | Diff [s] | Max faults | PF [ms] |
|---|---|---|---|---|
| 12 MB | 6.17 | 5.69 | 1 914 | 2.97 |
| 13 MB | 4.20 | 3.72 | 1 201 | 3.10 |
| 14 MB | 2.35 | 1.87 | 592 | 3.17 |
| 15 MB | 0.85 | 0.37 | 107 | 3.49 |

Analytic decomposition (0.5 ms RTT + 0.28 ms 4 KB transmit + 1.5 ms
holder service) = **2.29 ms**, matching the paper's derivation.

**Shape held:** per-fault time is a few milliseconds, roughly constant
in the limit, and decomposes into the paper's three components. Our
measured values run ~30 % above the analytic number because the derived
Diff/Max quotient also absorbs queueing at holders and the app node's
own NIC (4 app : 8 memory here vs. the paper's 8 : 16); the paper's
monotone *decrease* toward looser limits does not reproduce at this
scale because with only ~100 faults the per-run constant costs weigh in.""",
        ),
        Sweep(
            name="fig3",
            exp_id="F3",
            title="Figure 3 — execution time vs. #memory-available nodes",
            grid=_grid_fig3,
            report=_report_fig3,
            doc="""\
Paper: curves for limits 12–15 MB fall steeply from 1 memory node
(~25 000 s at 12 MB) and flatten by 8–16 nodes (7 183 s); the no-limit
curve is flat at 247 s.

Measured (pass-2 virtual seconds):

| #mem | 12 MB | 13 MB | 14 MB | 15 MB | no limit |
|---|---|---|---|---|---|
| 1 | 16.00 | 10.40 | 5.37 | 1.31 | 0.48 |
| 2 | 10.13 | 6.76 | 3.58 | 1.04 | 0.48 |
| 4 | 7.37 | 4.97 | 2.75 | 0.91 | 0.48 |
| 8 | 6.17 | 4.20 | 2.35 | 0.85 | 0.48 |

**Shape held:** single-holder bottleneck ratio 16.0/6.17 = 2.6×
(paper ≈ 3.5×), bottleneck resolved by ~8 nodes, curves ordered by
limit at every point, flat no-limit floor.""",
        ),
        Sweep(
            name="fig4",
            exp_id="F4",
            title="Figure 4 — comparison of proposed methods",
            grid=_grid_fig4,
            report=_report_fig4,
            doc="""\
Paper (16 memory nodes): disk swapping ≫ simple remote swapping ≫
remote update at every limit; remote update nearly flat.

Measured (8 memory nodes, pass-2 virtual seconds):

| limit | disk | simple swapping | remote update |
|---|---|---|---|
| 12 MB | 57.83 | 6.17 | 1.58 |
| 13 MB | 37.65 | 4.20 | 1.27 |
| 14 MB | 19.78 | 2.35 | 1.01 |
| 15 MB | 4.39 | 0.85 | 0.71 |

**Shape held:** disk/simple ≈ 9.4× at 12 MB (driven by the 13.4 ms vs
2.3 ms access-time gap plus disk-arm queueing of eviction writes behind
fault reads), simple/update ≈ 3.9×, and remote update's tight-to-loose
spread (2.2×) is a fraction of disk's (13.2×) — "considerably better
than other methods", as the paper concludes.""",
        ),
        Sweep(
            name="fig5",
            exp_id="F5",
            title="Figure 5 — dynamic memory migration",
            grid=_grid_fig5,
            report=_report_fig5,
            followups=_followups_fig5,
            doc="""\
Paper: making 1 or 2 of 16 memory nodes unavailable mid-run (signal →
shortage broadcast → directed migration) leaves execution time almost
unchanged.

Measured (remote update, 8 memory nodes, shortages injected at 40 % and
60 % of pass 2):

| limit | all available | 1 unavailable | 2 unavailable |
|---|---|---|---|
| 12 MB | 1.58 | 1.50 | 1.53 |
| 13 MB | 1.27 | 1.28 | 1.29 |
| 14 MB | 1.01 | 0.97 | 0.97 |
| 15 MB | 0.71 | 0.68 | 0.64 |

**Shape held:** the three curves nearly coincide (worst deviation < 4 %,
sometimes in migration's favour as re-packed holders batch updates
better); migration overhead is "almost negligible", and the mined
itemsets are bit-identical in every case.""",
        ),
        Sweep(
            name="disk",
            exp_id="S52",
            title="§5.2 — remote memory vs. disk access time",
            grid=_empty_grid,
            report=_report_disk,
            doc="""\
| device | access [ms] | paper |
|---|---|---|
| remote memory (ATM 155) | 2.29 | ~2.3 (derived) |
| Seagate Barracuda 7 200 rpm | 13.36 | "at least 13.0" |
| HITACHI DK3E1T 12 000 rpm | 7.76 | "7.5 even with the fastest" |

**Exact match** — these are the paper's own constants fed through the
same arithmetic.""",
        ),
        Sweep(
            name="monitor",
            exp_id="S54",
            title="§5.4 — monitoring-interval sensitivity",
            grid=_grid_monitor,
            report=_report_monitor,
            doc="""\
Paper: results unchanged for ~1–3 s intervals; "too short interval such
as shorter than 1 sec degrades the system performance".

Measured (limit 13 MB, 8 memory nodes): 4.16–4.24 s across intervals
0.02–10 s — flat in the 1–3 s regime as the paper reports. The
degradation below 1 s does **not** emerge at this scale: with 4
application nodes, broadcast cost is ≤3 % of a holder's CPU even at
20 ms intervals, whereas the paper's 100-node cluster multiplied both
the per-broadcast fan-out and the contention. Recorded as a scale
limitation rather than a contradiction.""",
        ),
        Sweep(
            name="policy",
            exp_id="A1",
            title="Ablation A1 — replacement policy",
            grid=_grid_policy,
            report=_report_policy,
            doc="""\
Paper: prescribes LRU (§4.3) without comparison.

Measured at 12 MB: LRU 6.17 s / 1 914 faults, FIFO 6.81 s / 2 178,
random 6.89 s / 2 202. LRU is best but only by ~10 % — consistent with
hash-line accesses being near-uniform, which bounds what any policy can
exploit. The paper's choice is validated but shown to be non-critical.""",
        ),
        Sweep(
            name="churn",
            exp_id="C1",
            title="Cluster dynamics — placement policy under churn",
            grid=_grid_churn,
            report=_report_churn,
            doc="""\
The paper's premise — "in recent distributed computing environments,
some workstations are used while their owners are away" — exercised
directly: seeded background-load traces drive every memory node's
ledger while pass 2 runs, and five swap-destination policies compete.
Pass-2 time at the 13 MB limit (remote update, 20 ms monitoring):

| placement | calm | sawtooth | bursty |
|---|---|---|---|
| most-available | 0.32 | 0.40 | 0.36 |
| round-robin | 0.36 | 0.39 | 0.37 |
| predictive | 0.37 | 0.43 | 0.49 |
| load-balancing | 0.32 | 0.40 | 0.36 |
| migrate-ahead | 0.37 | 0.43 | 0.49 |

Under *calm* load the paper's most-available choice (§4.2) wins and
load-balancing ties it (with equal-capacity nodes the two rank
identically); round-robin pays ~12 % for ignoring availability.
Staggered sawtooth reclaims (each node ramps to a full reclaim on its
own phase) cost every policy a migration burst per reclaim.  Under
*bursty* full reclaims the smoothed policies lose the most: exponential
smoothing averages over bursts, so predictive keeps routing lines into
nodes about to vanish (33 store-full rejections vs 6 for
most-available).  Migrate-ahead's proactive evacuation does trigger on
the sawtooth's gradual declines (6 ``migrate-ahead`` events) but at
this scale the app node holds no guest lines on the predicted-full
nodes by trigger time, so it ties plain predictive.  Smoothing helps
against *noise*; against *sustained* trends the freshest broadcast is
already the best predictor.""",
        ),
        Sweep(
            name="blocksize",
            exp_id="A2",
            title="Ablation A2 — message block size",
            grid=_grid_blocksize,
            report=_report_blocksize,
            doc="""\
Paper: fixes 4 KB blocks (§5.1), one hash line per block.

Measured at 12 MB: simple swapping 5.77 / 6.17 / 8.10 s for 1 / 4 /
16 KB blocks (every fault ships a full block, so bigger blocks inflate
PF time); remote update 1.47 / 1.58 / 1.92 s. The paper's 4 KB sits on
the flat part of the curve — larger blocks measurably hurt, smaller
ones buy little.""",
        ),
        Sweep(
            name="eld",
            exp_id="A3",
            title="Ablation A3 — HPA-ELD frequent-candidate duplication",
            grid=_grid_eld,
            report=_report_eld,
            doc="""\
The paper cites its companion skew-handling method in §5.1 ("We have
also developed a method to treat it"); ELD duplicates the most frequent
candidates on every node so they are counted locally. Measured at the
13 MB limit (remote update, 8 memory nodes):

| ELD fraction | duplicated | count messages | pass 2 [s] |
|---|---|---|---|
| 0 | 0 | 218 | 1.27 |
| 0.02 | 347 | 195 | 1.58 |
| 0.1 | 1 739 | 144 | 2.72 |
| 0.3 | 5 217 | 82 | 7.93 |

Duplicating 10 % of candidates removes 34 % of itemset traffic — the
frequent candidates carry a disproportionate share, as ELD predicts.
But under a *memory limit* the duplicated candidates are pinned bytes
that crowd hash lines out, so execution time **rises**: in exactly the
memory-constrained regime this paper studies, ELD's communication win
is bought with the resource that is already scarce. Mining results are
identical at every fraction.""",
        ),
        Sweep(
            name="loss",
            exp_id="A4",
            title="Ablation A4 — UBR segment loss / TCP retransmission",
            grid=_grid_loss,
            report=_report_loss,
            doc="""\
The cluster runs TCP over ATM's UBR class; the authors' companion study
([21]) analysed retransmission behaviour on this hardware. Measured
(simple swapping, 13 MB limit): pass 2 takes 4.20 s lossless, 4.92 s at
0.1 % loss, 8.60 s at 1 % loss — the RTO (200 ms), not the re-sent
bytes, is what loss costs, so degradation is superlinear in loss rate.""",
        ),
        Sweep(
            name="scaling",
            exp_id="SC",
            title="Scaling — speedup with application nodes",
            grid=_grid_scaling,
            report=_report_scaling,
            doc="""\
Pass-2 speedup with application nodes (no limit): 1.80× at 2 nodes,
3.01× at 4, 4.52× at 8 (efficiency 0.57 — communication and the
determination barrier eat into it at this small workload), matching
§3.3's "reasonably good performance improvement" at a modest scale.""",
        ),
        Sweep(
            name="npa",
            exp_id="B1",
            title="Baseline B1 — NPA vs HPA",
            grid=_grid_npa,
            report=_report_npa,
            doc="""\
§2.2's motivation quantified. Pass-2 time (remote update, 8 memory
nodes):

| limit | HPA | NPA |
|---|---|---|
| 12 MB | 1.58 | 34.63 |
| 13 MB | 1.27 | 33.97 |
| 14 MB | 1.01 | 33.45 |
| 15 MB | 0.71 | 32.86 |
| no limit | 0.48 | 1.65 |

NPA needs no itemset communication, but its per-node candidate table is
n× HPA's; under any of the paper's limits it lives almost entirely in
remote memory and runs ~25× slower. "HPA effectively utilizes the
whole memory space of all the processors" — reproduced.""",
        ),
        Sweep(
            name="hotpath",
            exp_id="HP",
            title="Hot path — counting-kernel wall-clock speedup",
            grid=_empty_grid,
            report=_report_hotpath,
            doc="""\
Host wall-clock of the vectorized counting kernels
(`repro.mining.kernels`) against the naive per-occurrence loops, with
bit-identical simulated behaviour enforced through the result hash —
see `BENCH_hotpath.json` and DESIGN.md §9. Unlike every other
experiment, the measured quantity is real seconds, so this sweep's
report is intentionally excluded from byte-identity comparisons.""",
        ),
    )
}

#: Historical registry name (CLI, benchmarks, tests).
ALL_EXPERIMENTS = ALL_SWEEPS

# Historical per-experiment entry points: each name is the Sweep itself,
# callable with a scale name exactly like the old functions.
exp_table2_pass_profile = ALL_SWEEPS["table2"]
exp_table3_partition_skew = ALL_SWEEPS["table3"]
exp_table4_pagefault_cost = ALL_SWEEPS["table4"]
exp_fig3_memory_nodes = ALL_SWEEPS["fig3"]
exp_fig4_method_comparison = ALL_SWEEPS["fig4"]
exp_fig5_migration = ALL_SWEEPS["fig5"]
exp_disk_access_analysis = ALL_SWEEPS["disk"]
exp_monitor_interval = ALL_SWEEPS["monitor"]
exp_ablation_policy = ALL_SWEEPS["policy"]
exp_churn_dynamics = ALL_SWEEPS["churn"]
exp_ablation_blocksize = ALL_SWEEPS["blocksize"]
exp_ablation_eld = ALL_SWEEPS["eld"]
exp_ablation_loss = ALL_SWEEPS["loss"]
exp_scaling = ALL_SWEEPS["scaling"]
exp_npa_comparison = ALL_SWEEPS["npa"]
exp_hotpath = ALL_SWEEPS["hotpath"]
