"""Hot-path wall-clock benchmark: naive vs vectorized counting kernels.

Runs the same HPA configuration twice — ``kernel="naive"`` and
``kernel="vector"`` — and reports host wall-clock per phase, the pass-2
counting speedup, and a result-equivalence hash covering everything the
kernels must not change: mined itemsets, support counts, per-pass
simulated times, and message counts.  ``repro-bench --hotpath-json DIR``
writes the report as ``DIR/BENCH_hotpath.json`` so later PRs have a
perf trajectory to regress against.

Wall-clock here is *host* time (``time.perf_counter``), entirely
distinct from the simulated virtual clock — see DESIGN.md's kernel-layer
section for why the two must never mix.  Per-phase host times come from a
:class:`~repro.harness.wallclock.PhaseWallClock` subscribed to the run's
phase-boundary events: the drivers themselves never read a host clock
(``repro-lint`` RPL101), so cached results cannot embed one.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import time

from repro.mining.hpa import HPAConfig, HPAResult, HPARun
from repro.harness.scales import prepare_workload
from repro.harness.wallclock import PhaseWallClock

__all__ = [
    "result_hash",
    "dominant_phase",
    "run_hotpath",
    "write_hotpath_json",
    "render_hotpath",
]

#: Acceptance target: wall-clock speedup of the pass-2 counting phase at
#: the default benchmark scale.
TARGET_COUNTING_SPEEDUP = 3.0


def result_hash(res: HPAResult) -> str:
    """Digest of every kernel-invariant quantity of a run.

    Covers the mined itemsets with exact support counts plus, per pass,
    the simulated phase times and message counts.  Two runs differing
    only in host wall-clock hash identically; any drift in results or
    simulated behaviour changes the digest.
    """
    payload = {
        "large": sorted(
            (list(itemset), count) for itemset, count in res.large_itemsets.items()
        ),
        "passes": [
            [
                p.k,
                p.n_candidates,
                p.n_large,
                p.duration_s,
                p.candgen_time_s,
                p.counting_time_s,
                p.determine_time_s,
                p.count_messages,
                p.faults_per_node,
                p.swap_outs_per_node,
                p.update_msgs_per_node,
                p.n_duplicated,
            ]
            for p in res.passes
        ],
        "total_time_s": res.total_time_s,
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def dominant_phase(phases: "dict[str, float]") -> str:
    """Name of the pass-2 phase with the largest host wall share.

    Returns ``"candgen"`` / ``"counting"`` / ``"determine"``.  On the
    vectorized kernel the answer should be ``"counting"`` — when candidate
    generation overtakes it, the kernel work has been optimized past the
    point where the harness around it is the bottleneck, and further
    kernel tuning is wasted effort (the bench warns on this).
    """
    return max(phases, key=lambda name: phases[name]).removesuffix("_wall_s")


def _one_run(scale_name: str, kernel: str) -> dict:
    prep = prepare_workload(scale_name)
    s = prep.scale
    cfg = HPAConfig(
        minsup=s.minsup,
        n_app_nodes=s.n_app_nodes,
        total_lines=s.total_lines,
        max_k=2,  # pass 2 is the paper's (and the kernels') hot path
        seed=s.seed,
        kernel=kernel,
    )
    run = HPARun(prep.db, cfg)
    profiler = PhaseWallClock().attach(run)
    start = time.perf_counter()
    res = run.run()
    wall_s = time.perf_counter() - start
    p2 = res.pass_result(2)
    phases = profiler.pass_walls(2)
    return {
        "kernel": kernel,
        "wall_s": wall_s,
        "phases": phases,
        "dominant_phase": dominant_phase(phases),
        "sim_pass2_s": p2.duration_s,
        "count_messages": p2.count_messages,
        "n_large": len(res.large_itemsets),
        "result_hash": result_hash(res),
    }


def run_hotpath(scale_name: str = "small") -> dict:
    """Benchmark naive vs kernel counting at one scale; returns the
    BENCH_hotpath.json payload."""
    naive = _one_run(scale_name, "naive")
    vector = _one_run(scale_name, "vector")
    counting_speedup = (
        naive["phases"]["counting_wall_s"] / vector["phases"]["counting_wall_s"]
        if vector["phases"]["counting_wall_s"] > 0
        else float("inf")
    )
    total_speedup = (
        naive["wall_s"] / vector["wall_s"] if vector["wall_s"] > 0 else float("inf")
    )
    prep = prepare_workload(scale_name)
    return {
        "bench": "hotpath",
        "scale": scale_name,
        "workload": prep.scale.workload,
        "target_counting_speedup": TARGET_COUNTING_SPEEDUP,
        "runs": {"naive": naive, "vector": vector},
        "counting_speedup": counting_speedup,
        "total_speedup": total_speedup,
        "dominant_phase": vector["dominant_phase"],
        "equivalent": naive["result_hash"] == vector["result_hash"],
    }


def write_hotpath_json(out_dir: "str | pathlib.Path", data: dict) -> pathlib.Path:
    """Write ``BENCH_hotpath.json`` under ``out_dir``; returns the path."""
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / "BENCH_hotpath.json"
    path.write_text(json.dumps(data, indent=2) + "\n")
    return path


def render_hotpath(data: dict) -> str:
    """Human-readable summary of a :func:`run_hotpath` payload."""
    naive, vector = data["runs"]["naive"], data["runs"]["vector"]
    lines = [
        f"hotpath bench — scale {data['scale']} ({data['workload']})",
        f"  pass-2 counting wall: naive {naive['phases']['counting_wall_s']:.3f}s"
        f" -> vector {vector['phases']['counting_wall_s']:.3f}s"
        f"  ({data['counting_speedup']:.1f}x, target"
        f" {data['target_counting_speedup']:g}x)",
        f"  total wall: naive {naive['wall_s']:.3f}s"
        f" -> vector {vector['wall_s']:.3f}s  ({data['total_speedup']:.1f}x)",
        f"  simulated pass-2 time: {vector['sim_pass2_s']:.4f}s"
        f" (naive {naive['sim_pass2_s']:.4f}s — must be identical)",
        f"  result hash: {'MATCH' if data['equivalent'] else 'MISMATCH'}"
        f" ({vector['result_hash'][:16]}…)",
        f"  dominant pass-2 phase (vector): {data['dominant_phase']}",
    ]
    walls = vector["phases"]
    if walls["candgen_wall_s"] > walls["counting_wall_s"]:
        lines.append(
            "  WARNING: candidate generation "
            f"({walls['candgen_wall_s']:.3f}s) now outweighs counting "
            f"({walls['counting_wall_s']:.3f}s) — the counting kernel is "
            "no longer the bottleneck at this scale"
        )
    return "\n".join(lines)
