"""``repro-trace`` — summarize an exported trace directory.

Usage::

    repro-trace DIR              # manifest, per-phase timings, histograms
    repro-trace DIR --histogram swap_roundtrip_s

Renders per-phase breakdowns and latency histograms (Table 2 / Table 4
style numbers) straight from the files ``repro-bench --trace`` wrote,
via the same :mod:`repro.analysis.reporting` helpers the experiments
use.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.reporting import render_kv, render_table
from repro.obs.export import read_events_jsonl, read_manifest, read_metrics_json

__all__ = ["main", "build_parser", "summarize"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Summarize a trace directory written by repro-bench --trace.",
    )
    parser.add_argument("directory", help="trace directory (manifest.json, ...)")
    parser.add_argument(
        "--histogram",
        default="pagefault_latency_s",
        help="histogram metric to render (default: pagefault_latency_s)",
    )
    return parser


def _merge_histograms(metrics: dict, name: str) -> dict:
    """Fold every label set of histogram ``name`` into one bucket table."""
    parts = [h for h in metrics.get("histograms", []) if h["name"] == name]
    if not parts:
        return {}
    buckets = parts[0]["buckets"]
    counts = [0] * (len(buckets) + 1)
    total, total_sum = 0, 0.0
    lo, hi = float("inf"), float("-inf")
    for part in parts:
        if part["buckets"] != buckets:
            continue  # mixed bucketings cannot be merged bucket-wise
        for i, c in enumerate(part["bucket_counts"]):
            counts[i] += c
        total += part["count"]
        total_sum += part["sum"]
        if part["count"]:
            lo, hi = min(lo, part["min"]), max(hi, part["max"])
    return {
        "buckets": buckets,
        "bucket_counts": counts,
        "count": total,
        "sum": total_sum,
        "min": lo if total else 0.0,
        "max": hi if total else 0.0,
    }


def _render_histogram(name: str, merged: dict) -> str:
    if not merged or not merged["count"]:
        return f"histogram {name!r}: no observations"
    bounds = ["<= %g" % b for b in merged["buckets"]] + [
        "> %g" % merged["buckets"][-1]
    ]
    peak = max(merged["bucket_counts"]) or 1
    rows = [
        (label, count, "#" * round(30 * count / peak))
        for label, count in zip(bounds, merged["bucket_counts"])
    ]
    mean = merged["sum"] / merged["count"]
    table = render_table(
        ["bucket", "count", ""],
        rows,
        title=f"{name} — {merged['count']} observations, "
        f"mean {mean * 1e3:.3f} ms, min {merged['min'] * 1e3:.3f} ms, "
        f"max {merged['max'] * 1e3:.3f} ms",
    )
    return table


def _phase_table(events) -> str:
    spans: dict[str, list[float]] = {}
    order: list[str] = []
    for event in events:
        if event.kind != "span":
            continue
        name = event.detail
        if name not in spans:
            spans[name] = []
            order.append(name)
        spans[name].append(event.fields.get("duration_s", 0.0))
    if not spans:
        return "no span events recorded"
    rows = []
    for name in order:
        durations = spans[name]
        rows.append(
            (
                name,
                len(durations),
                sum(durations),
                sum(durations) / len(durations),
            )
        )
    return render_table(
        ["phase", "runs", "total [s]", "mean [s]"],
        rows,
        title="per-phase timings (virtual seconds, across all runs)",
    )


def _reported_fault_cost(manifest: dict) -> str:
    faults = sum(r.get("faults", 0) for r in manifest.get("runs", []))
    fault_time = sum(r.get("fault_time_s", 0.0) for r in manifest.get("runs", []))
    if not faults:
        return "runs reported no pagefaults"
    return (
        f"runs reported {faults} faults, "
        f"mean {fault_time / faults * 1e3:.3f} ms each"
    )


def summarize(directory, histogram: str = "pagefault_latency_s") -> str:
    """The full text report for one trace directory."""
    directory = Path(directory)
    manifest = read_manifest(directory / "manifest.json")
    metrics = read_metrics_json(directory / "metrics.json")
    events = read_events_jsonl(directory / "events.jsonl")
    parts = [
        render_kv(
            {
                "experiments": ", ".join(manifest.get("experiments", [])) or "?",
                "scale": manifest.get("scale", "?"),
                "seed": manifest.get("seed", "?"),
                "runs": manifest.get("n_runs", len(manifest.get("runs", []))),
                "events": manifest.get("n_events", len(events)),
                "wall time [s]": manifest.get("wall_time_s", "?"),
            },
            title=f"trace {directory}",
        ),
        _phase_table(events),
        _render_histogram(histogram, _merge_histograms(metrics, histogram)),
        _reported_fault_cost(manifest),
    ]
    return "\n\n".join(parts)


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    directory = Path(args.directory)
    for required in ("manifest.json", "metrics.json", "events.jsonl"):
        if not (directory / required).exists():
            print(f"not a trace directory: missing {directory / required}", file=sys.stderr)
            return 2
    print(summarize(directory, args.histogram))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
