"""Unified telemetry: metrics registry, event bus, traces, manifests.

The paper's whole evaluation is observational — pagefault counts,
per-pass execution profiles, swap traffic, fault-latency distributions
(Tables 2-4, Figures 3-5).  This package makes those quantities
first-class outputs of *any* run instead of bespoke benchmark code:

- :class:`~repro.obs.events.EventBus` — multi-subscriber bus carrying
  timestamped, structured :class:`~repro.obs.events.ObsEvent` records
  from every layer (pagers, swap manager, monitors, placement, network,
  mining drivers);
- :class:`~repro.obs.metrics.MetricsRegistry` — named counters, gauges
  and fixed-bucket + quantile histograms keyed by node/component;
- :class:`~repro.obs.telemetry.Telemetry` — bundles bus + registry,
  wires them into an :class:`~repro.mining.hpa.HPARun` or
  :class:`~repro.mining.npa.NPARun`, and records phase/span timings on
  the simulation clock;
- :mod:`~repro.obs.export` — JSONL event traces, Chrome
  ``trace_event``-format timelines, ``metrics.json`` and per-run
  ``manifest.json``;
- ``repro-trace`` (:mod:`~repro.obs.cli`) — renders per-phase timings
  and latency histograms from an exported trace directory.
"""

from repro.obs.context import current_telemetry, telemetry_session
from repro.obs.events import EventBus, ObsEvent
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
    SIZE_BUCKETS_B,
)
from repro.obs.telemetry import Telemetry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS_S",
    "SIZE_BUCKETS_B",
    "EventBus",
    "ObsEvent",
    "Telemetry",
    "current_telemetry",
    "telemetry_session",
]
