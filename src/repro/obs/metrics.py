"""Metrics registry: named counters, gauges, and latency/size histograms.

Metrics are keyed by name plus free-form labels (``node=3``,
``channel="count"``), following the convention of production metric
systems, so per-node and per-component series fall out of one registry.
Histograms keep both fixed bucket counts (for cheap merging and ASCII
rendering) and the raw samples (for exact quantiles — runs are small
enough that this is the simpler, more honest choice).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterable, Mapping, Optional

from repro.errors import HarnessError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS_S",
    "SIZE_BUCKETS_B",
]

#: Default buckets for latency histograms (seconds): spans the paper's
#: measured range — ~2.3 ms remote faults, 7.5-13 ms disk faults, RTO
#: stalls in the loss ablation.
LATENCY_BUCKETS_S = (
    0.0005, 0.001, 0.002, 0.003, 0.005, 0.01, 0.02, 0.05, 0.1, 0.5,
)

#: Default buckets for message-size histograms (bytes): centred on the
#: paper's 4 KB message block.
SIZE_BUCKETS_B = (64, 256, 1024, 4096, 16384, 65536)


class Counter:
    """Monotonically increasing count (events, bytes, messages)."""

    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise HarnessError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def to_dict(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Last-observed value (available memory, queue depth)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0
        self.n_sets = 0

    def set(self, value: float) -> None:
        self.value = value
        self.n_sets += 1

    def to_dict(self) -> dict:
        return {"value": self.value, "n_sets": self.n_sets}


class Histogram:
    """Fixed-bucket histogram that also answers exact quantiles.

    ``buckets`` are upper bounds; one implicit overflow bucket catches
    everything above the last bound.  Samples are retained sorted, so
    :meth:`percentile` is exact (linear interpolation between order
    statistics, the same convention as ``numpy.percentile``).
    """

    kind = "histogram"

    def __init__(self, buckets: Iterable[float] = LATENCY_BUCKETS_S) -> None:
        self.buckets: tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise HarnessError("histogram needs at least one bucket bound")
        self.bucket_counts: list[int] = [0] * (len(self.buckets) + 1)
        self._samples: list[float] = []
        self.sum: float = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        insort(self._samples, value)
        self.sum += value

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._samples[0] if self._samples else 0.0

    @property
    def max(self) -> float:
        return self._samples[-1] if self._samples else 0.0

    def percentile(self, p: float) -> float:
        """Exact p-th percentile (0 <= p <= 100) of the observed samples."""
        if not 0 <= p <= 100:
            raise HarnessError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        idx = (len(self._samples) - 1) * p / 100.0
        lo = int(idx)
        hi = min(lo + 1, len(self._samples) - 1)
        frac = idx - lo
        return self._samples[lo] * (1 - frac) + self._samples[hi] * frac

    def to_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "percentiles": {
                "p50": self.percentile(50),
                "p90": self.percentile(90),
                "p99": self.percentile(99),
            },
        }


def _labels_key(labels: Mapping[str, object]) -> tuple:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """All metrics of one telemetry session, keyed by (name, labels).

    Accessors create on first use, so call sites read naturally::

        registry.counter("pagefaults", node=3).inc()
        registry.histogram("pagefault_latency_s", node=3).observe(0.0023)
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple], object] = {}
        self._label_sets: dict[tuple[str, tuple], dict] = {}

    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(**kwargs)
            self._metrics[key] = metric
            self._label_sets[key] = dict(labels)
        elif not isinstance(metric, cls):
            raise HarnessError(
                f"metric {name!r}{labels} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Optional[Iterable[float]] = None, **labels
    ) -> Histogram:
        kwargs = {} if buckets is None else {"buckets": buckets}
        return self._get(Histogram, name, labels, **kwargs)

    def get(self, name: str, **labels):
        """Look up an existing metric; ``None`` when never touched."""
        return self._metrics.get((name, _labels_key(labels)))

    def collect(self, name: Optional[str] = None) -> list[tuple[str, dict, object]]:
        """(name, labels, metric) triples, optionally for one name only."""
        out = []
        for key, metric in sorted(self._metrics.items(), key=lambda kv: kv[0]):
            if name is None or key[0] == name:
                out.append((key[0], self._label_sets[key], metric))
        return out

    def merged_histogram(self, name: str) -> Optional[Histogram]:
        """One histogram folding every label set of ``name`` together
        (e.g. cluster-wide pagefault latency from per-node series)."""
        parts = [m for _, _, m in self.collect(name) if isinstance(m, Histogram)]
        if not parts:
            return None
        merged = Histogram(buckets=parts[0].buckets)
        for part in parts:
            for sample in part._samples:
                merged.observe(sample)
        return merged

    def __len__(self) -> int:
        return len(self._metrics)

    def to_dict(self) -> dict:
        """JSON-ready dump grouped by metric type (``metrics.json``)."""
        out: dict[str, list] = {"counters": [], "gauges": [], "histograms": []}
        for name, labels, metric in self.collect():
            entry = {"name": name, "labels": labels, **metric.to_dict()}
            out[metric.kind + "s"].append(entry)
        return out
