"""The telemetry event bus.

Every instrumented component publishes :class:`ObsEvent` records through
one :class:`EventBus`; any number of subscribers (the in-memory event
log, the metrics updater, a :class:`~repro.analysis.trace.TraceCollector`
adapter, ...) receive each event synchronously.  This supersedes the old
single ``Pager.on_event`` callback slot, which allowed exactly one
consumer and was wired only by HPA.

Emission is cheap when nobody listens: components hold ``bus = None``
until a :class:`~repro.obs.telemetry.Telemetry` attaches, and ``emit``
returns immediately with no subscribers, so uninstrumented runs pay one
attribute check per event site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["ObsEvent", "EventBus", "Subscriber"]

#: A bus subscriber: any callable accepting one :class:`ObsEvent`.
Subscriber = Callable[["ObsEvent"], None]


@dataclass(frozen=True)
class ObsEvent:
    """One timestamped, structured happening on one node.

    ``fields`` carries machine-readable details (durations, byte counts,
    peer node ids); ``detail`` stays the human-readable string the legacy
    ``on_event`` hook carried.  ``node_id`` -1 means cluster-wide (phase
    boundaries, spans).  ``run`` distinguishes events from different
    simulation runs sharing one bus (each run's clock restarts at 0).
    """

    time: float
    node_id: int
    kind: str
    detail: str = ""
    run: int = 0
    fields: dict = field(default_factory=dict)


class EventBus:
    """Multi-subscriber synchronous event dispatch.

    The clock is pluggable so one bus can follow several consecutive
    simulation environments (the ``repro-bench --trace`` path runs many
    configurations through one bus, tagging each with a run id).
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self.run = 0
        self._subscribers: list[Subscriber] = []

    def subscribe(self, fn: Subscriber) -> Subscriber:
        """Register ``fn`` to receive every subsequent event; returns it
        (handy for later :meth:`unsubscribe`)."""
        self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Subscriber) -> None:
        """Remove a subscriber; unknown subscribers are ignored."""
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass

    @property
    def n_subscribers(self) -> int:
        return len(self._subscribers)

    def emit(self, kind: str, node_id: int, detail: str = "", **fields) -> None:
        """Publish one event at the current clock time to all subscribers."""
        if not self._subscribers:
            return
        event = ObsEvent(
            time=self.clock(),
            node_id=node_id,
            kind=kind,
            detail=detail,
            run=self.run,
            fields=fields,
        )
        for fn in self._subscribers:
            fn(event)
