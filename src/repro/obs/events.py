"""The telemetry event bus.

Every instrumented component publishes :class:`ObsEvent` records through
one :class:`EventBus`; any number of subscribers (the in-memory event
log, the metrics updater, a :class:`~repro.analysis.trace.TraceCollector`
adapter, ...) receive each event synchronously.  This supersedes the old
single ``Pager.on_event`` callback slot, which allowed exactly one
consumer and was wired only by HPA.

Emission is cheap when nobody listens: components hold ``bus = None``
until a :class:`~repro.obs.telemetry.Telemetry` attaches, and ``emit``
returns immediately with no subscribers, so uninstrumented runs pay one
attribute check per event site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = [
    "ObsEvent",
    "EventBus",
    "Subscriber",
    "EVENT_KINDS",
    "METRIC_NAMES",
]

#: The canonical telemetry vocabulary: every event kind any component may
#: ``emit``.  The bus itself stays stringly-typed (emission must be cheap
#: and decoupled), so a typo'd kind is not a runtime error — it simply
#: reaches no consumer logic and vanishes from traces.  ``repro-lint``'s
#: RPL301 checker holds every literal ``emit(...)`` site to this set;
#: adding an event kind means declaring it here first.
EVENT_KINDS = frozenset({
    # pager / swap manager (repro.core)
    "fault",            # one pagefault service, with source + duration
    "swap-out",         # one line leaving resident memory
    "swap-cost",        # the transfer/store cost of an eviction
    "make-room",        # an eviction burst freeing space for an insert
    "migration",        # shortage-driven bulk relocation of lines
    # placement / monitors (repro.core)
    "placement",        # a destination chosen for a swapped line
    "placement-reject", # a destination refused (full / no memory)
    "monitor-broadcast",# periodic availability announcement
    "shortage",         # a memory node signalling local pressure
    "shortage-seen",    # an application node learning of a shortage
    "migrate-ahead",    # proactive evacuation of a predicted shortage
    # cluster dynamics (repro.cluster.dynamics)
    "churn-level",      # a background-load trace step applied to a node
    "node-fail",        # a memory node stopped lending mid-pass
    "node-recover",     # a failed memory node resumed lending
    # network (repro.cluster)
    "net-msg",          # one delivered message
    "net-retransmit",   # one lost-and-retransmitted message
    # run structure (repro.obs / drivers)
    "phase",            # point marker at a phase boundary
    "span",             # completed interval on the simulation clock
    # sweep engine (repro.harness.sweep)
    "sweep-start",
    "sweep-run",
    "sweep-done",
    # distributed sweep queue / workers (repro.harness.sweep.queue/worker)
    "queue-enqueue",    # one scenario key added to the shared work queue
    "lease-acquire",    # a worker leased one queued cell
    "lease-renew",      # a live worker extended its lease deadline
    "lease-reclaim",    # an expired lease returned its cell to pending
    "lease-release",    # a leased cell completed (result in the store)
    "worker-start",     # one worker loop began draining the queue
    "worker-exit",      # one worker loop stopped (drained or idle)
    # store HTTP mode (repro.harness.sweep.serve)
    "serve-request",    # one read-only store/report query answered
    # report service (repro.analysis.report)
    "report-render",    # one markdown/HTML report rendered
    "report-diff",      # one regression-gate comparison completed
    # schedule-race sanitizer (repro.analysis.race)
    "race-conflict",    # one same-epoch unordered conflict detected
})

#: The canonical metric vocabulary: every counter/histogram/gauge name
#: registered on a :class:`~repro.obs.metrics.MetricsRegistry`.  RPL302
#: holds every literal accessor call to this set, for the same reason as
#: :data:`EVENT_KINDS` — an undeclared metric records into a series
#: nothing exports or asserts on.
METRIC_NAMES = frozenset({
    # derived from the event stream (repro.obs.telemetry)
    "pagefaults", "fault_bytes_in", "pagefault_latency_s",
    "swap_outs", "swap_bytes_out", "swap_roundtrip_s",
    "net_messages", "net_wire_bytes", "message_size_bytes",
    "net_retransmissions",
    "migrations", "lines_migrated", "migration_bytes",
    "placements", "placement_rejections",
    "placement_latency_to_shortage_s",
    "migrate_ahead_evacuations",
    "eviction_bursts", "eviction_victims",
    "monitor_available_bytes", "shortages",
    # cluster dynamics (repro.cluster.dynamics)
    "churn_steps", "churn_level_bytes",
    "node_failures", "node_recoveries",
    "span_s",
    "sweep_runs", "sweep_run_wall_s",
    # distributed sweep queue / workers (repro.harness.sweep)
    "queue_enqueues", "queue_leases", "queue_reclaims",
    "worker_cells", "worker_cell_wall_s",
    "serve_requests", "store_gc_removed",
    # cache tiers (repro.runtime)
    "scenario_cache_hits", "scenario_cache_misses",
    "result_store_hits", "result_store_misses", "result_store_writes",
    # report service (repro.analysis.report)
    "report_renders", "report_cells", "report_diffs",
})

#: A bus subscriber: any callable accepting one :class:`ObsEvent`.
Subscriber = Callable[["ObsEvent"], None]


@dataclass(frozen=True)
class ObsEvent:
    """One timestamped, structured happening on one node.

    ``fields`` carries machine-readable details (durations, byte counts,
    peer node ids); ``detail`` stays the human-readable string the legacy
    ``on_event`` hook carried.  ``node_id`` -1 means cluster-wide (phase
    boundaries, spans).  ``run`` distinguishes events from different
    simulation runs sharing one bus (each run's clock restarts at 0).
    """

    time: float
    node_id: int
    kind: str
    detail: str = ""
    run: int = 0
    fields: dict = field(default_factory=dict)


class EventBus:
    """Multi-subscriber synchronous event dispatch.

    The clock is pluggable so one bus can follow several consecutive
    simulation environments (the ``repro-bench --trace`` path runs many
    configurations through one bus, tagging each with a run id).
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self.run = 0
        self._subscribers: list[Subscriber] = []

    def subscribe(self, fn: Subscriber) -> Subscriber:
        """Register ``fn`` to receive every subsequent event; returns it
        (handy for later :meth:`unsubscribe`)."""
        self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Subscriber) -> None:
        """Remove a subscriber; unknown subscribers are ignored."""
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass

    @property
    def n_subscribers(self) -> int:
        return len(self._subscribers)

    def emit(self, kind: str, node_id: int, detail: str = "", **fields) -> None:
        """Publish one event at the current clock time to all subscribers."""
        if not self._subscribers:
            return
        event = ObsEvent(
            time=self.clock(),
            node_id=node_id,
            kind=kind,
            detail=detail,
            run=self.run,
            fields=fields,
        )
        for fn in self._subscribers:
            fn(event)
