"""The telemetry runtime: one bus + one registry, wired through a run.

:class:`Telemetry` is what a caller holds: it owns an
:class:`~repro.obs.events.EventBus` and a
:class:`~repro.obs.metrics.MetricsRegistry`, keeps the in-memory event
log, derives standard metrics from the event stream, and knows how to
wire itself into any :class:`~repro.runtime.driver.MiningDriver` run
(``env``, ``cluster``, ``pagers``, ``managers``, ``monitors``,
``clients`` — the shared attribute surface).

One telemetry object can follow several consecutive runs — each
:meth:`attach` rebinds the bus clock to the new run's environment and
tags subsequent events with a fresh run id, which is how
``repro-bench --trace`` collects a whole experiment sweep into one
trace directory.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.events import EventBus, ObsEvent
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    MetricsRegistry,
    SIZE_BUCKETS_B,
)

__all__ = ["Telemetry", "run_meta"]


def run_meta(driver: str, config) -> dict:
    """Manifest entry describing one run's configuration."""
    return {
        "driver": driver,
        "pager": config.pager,
        "n_app_nodes": config.n_app_nodes,
        "n_memory_nodes": config.n_memory_nodes,
        "memory_limit_bytes": config.memory_limit_bytes,
        "replacement": config.replacement,
        "placement": config.placement,
        "churn": getattr(config, "churn", "none"),
        "minsup": config.minsup,
        "seed": config.seed,
    }


class _MetricsUpdater:
    """Bus subscriber folding the event stream into standard metrics.

    This is where the scattered one-off stats (``PagerStats``,
    ``NetworkStats``, ...) gain distributional depth: the same events
    that feed those counters also feed per-node latency and size
    histograms here, without the emitting component knowing about the
    registry.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        #: Last placement time per destination node, for the
        #: latency-to-shortage histogram: how long after a policy last
        #: routed traffic to a node did that node declare shortage?  A
        #: policy that keeps feeding soon-to-be-hot nodes scores short
        #: latencies here.
        self._last_placement: dict[int, float] = {}
        self._placement_policy: dict[int, str] = {}

    def __call__(self, event: ObsEvent) -> None:
        r = self.registry
        kind, node, f = event.kind, event.node_id, event.fields
        if kind == "fault":
            r.counter("pagefaults", node=node, source=f.get("source", "?")).inc()
            if "bytes" in f:
                r.counter("fault_bytes_in", node=node).inc(f["bytes"])
            if "duration_s" in f:
                r.histogram(
                    "pagefault_latency_s", buckets=LATENCY_BUCKETS_S,
                    node=node, source=f.get("source", "?"),
                ).observe(f["duration_s"])
        elif kind == "swap-out":
            r.counter("swap_outs", node=node, source=f.get("source", "?")).inc()
            if "bytes" in f:
                r.counter("swap_bytes_out", node=node).inc(f["bytes"])
        elif kind == "swap-cost":
            if "duration_s" in f:
                r.histogram(
                    "swap_roundtrip_s", buckets=LATENCY_BUCKETS_S,
                    node=node, source=f.get("source", "?"),
                ).observe(f["duration_s"])
        elif kind == "net-msg":
            r.counter("net_messages", channel=f.get("channel", "?")).inc()
            if "wire_bytes" in f:
                r.counter("net_wire_bytes").inc(f["wire_bytes"])
            if "size_bytes" in f:
                r.histogram(
                    "message_size_bytes", buckets=SIZE_BUCKETS_B,
                    channel=f.get("channel", "?"),
                ).observe(f["size_bytes"])
        elif kind == "net-retransmit":
            r.counter("net_retransmissions").inc()
        elif kind == "migration":
            r.counter("migrations", node=node).inc()
            if "lines" in f:
                r.counter("lines_migrated", node=node).inc(f["lines"])
            if "bytes" in f:
                r.counter("migration_bytes", node=node).inc(f["bytes"])
        elif kind == "placement":
            if "dst" in f:
                r.counter(
                    "placements", dst=f["dst"], policy=f.get("policy", "?")
                ).inc()
                self._last_placement[f["dst"]] = event.time
                self._placement_policy[f["dst"]] = f.get("policy", "?")
        elif kind == "placement-reject":
            r.counter(
                "placement_rejections", node=node, policy=f.get("policy", "?")
            ).inc()
        elif kind == "migrate-ahead":
            r.counter("migrate_ahead_evacuations", node=node).inc()
        elif kind == "make-room":
            r.counter("eviction_bursts", node=node).inc()
            if "victims" in f:
                r.counter("eviction_victims", node=node).inc(f["victims"])
        elif kind == "monitor-broadcast":
            if "available_bytes" in f:
                r.gauge("monitor_available_bytes", node=node).set(
                    f["available_bytes"]
                )
        elif kind == "shortage":
            r.counter("shortages", node=node).inc()
            placed_at = self._last_placement.get(node)
            if placed_at is not None:
                r.histogram(
                    "placement_latency_to_shortage_s",
                    buckets=LATENCY_BUCKETS_S,
                    policy=self._placement_policy.get(node, "?"),
                ).observe(max(0.0, event.time - placed_at))
        elif kind == "churn-level":
            r.counter("churn_steps", node=node).inc()
            if "level_bytes" in f:
                r.gauge("churn_level_bytes", node=node).set(f["level_bytes"])
        elif kind == "node-fail":
            r.counter("node_failures", node=node).inc()
        elif kind == "node-recover":
            r.counter("node_recoveries", node=node).inc()
        elif kind == "span":
            if "duration_s" in f:
                r.histogram(
                    "span_s", buckets=(0.01, 0.1, 1.0, 10.0, 100.0, 1000.0),
                    span=event.detail,
                ).observe(f["duration_s"])
        elif kind == "sweep-run":
            r.counter(
                "sweep_runs",
                sweep=f.get("sweep", "?"), source=f.get("source", "?"),
            ).inc()
            if "wall_s" in f:
                r.histogram(
                    "sweep_run_wall_s",
                    buckets=(0.01, 0.1, 1.0, 10.0, 100.0, 1000.0),
                    sweep=f.get("sweep", "?"),
                ).observe(f["wall_s"])
        elif kind == "queue-enqueue":
            r.counter("queue_enqueues").inc()
        elif kind == "lease-acquire":
            r.counter("queue_leases", worker=f.get("worker", "?")).inc()
        elif kind == "lease-reclaim":
            r.counter("queue_reclaims").inc()
        elif kind == "lease-release":
            r.counter("worker_cells", worker=f.get("worker", "?")).inc()
            if "wall_s" in f:
                r.histogram(
                    "worker_cell_wall_s",
                    buckets=(0.01, 0.1, 1.0, 10.0, 100.0, 1000.0),
                    worker=f.get("worker", "?"),
                ).observe(f["wall_s"])
        elif kind == "serve-request":
            r.counter(
                "serve_requests", status=str(f.get("status", "?"))
            ).inc()
        elif kind == "report-render":
            r.counter("report_renders", fmt=f.get("fmt", "?")).inc()
            if "n_cells" in f:
                r.counter("report_cells", fmt=f.get("fmt", "?")).inc(
                    f["n_cells"]
                )
        elif kind == "report-diff":
            r.counter("report_diffs", verdict=f.get("verdict", "?")).inc()


class Telemetry:
    """Bus + registry + event log + per-run manifests, in one handle."""

    def __init__(self) -> None:
        self.bus = EventBus()
        self.registry = MetricsRegistry()
        self.events: list[ObsEvent] = []
        #: One dict per attached run: configuration meta plus whatever
        #: the driver reports at completion (see :meth:`end_run`).
        self.runs: list[dict] = []
        self.bus.subscribe(self.events.append)
        self.bus.subscribe(_MetricsUpdater(self.registry))

    # -- run lifecycle -----------------------------------------------------

    def attach(self, run, meta: Optional[dict] = None) -> int:
        """Wire this telemetry into one driver run; returns its run id.

        Hooks every event source: both mining drivers' pagers (including
        disk-fallback pagers chained behind remote ones), swap managers,
        memory monitors, monitor clients, placement policies, and the
        cluster network.
        """
        run_id = self.begin_run(run.env, meta)
        run.cluster.network.bus = self.bus
        for pager in run.pagers.values():
            if pager is None:
                continue
            if pager.placement is not None:
                pager.placement.bus = self.bus
            for chained in pager.chain():
                chained.bus = self.bus
        for manager in run.managers.values():
            manager.bus = self.bus
        for monitor in run.monitors.values():
            monitor.bus = self.bus
        for client in run.clients.values():
            client.bus = self.bus
        dynamics = getattr(getattr(run, "runtime", None), "dynamics", None)
        if dynamics is not None:
            dynamics.bus = self.bus
            for nd in dynamics.node_dynamics:
                nd.bus = self.bus
        return run_id

    def begin_run(self, env, meta: Optional[dict] = None) -> int:
        """Start a new run segment on this bus (used by :meth:`attach`)."""
        run_id = len(self.runs)
        self.runs.append({"run": run_id, **(meta or {})})
        self.bus.run = run_id
        self.bus.clock = lambda: env.now
        return run_id

    def end_run(self, **extra) -> None:
        """Record completion facts (virtual duration, fault totals, ...)
        into the current run's manifest entry."""
        if self.runs:
            self.runs[-1].update(extra)

    # -- phase / span timers ------------------------------------------------

    def phase_mark(self, name: str, node_id: int = -1) -> None:
        """Point event marking a phase boundary (legacy ``phase`` kind,
        consumed by :class:`~repro.analysis.trace.TraceCollector` users)."""
        self.bus.emit("phase", node_id, name)

    def span(self, name: str, start: float, end: float, node_id: int = -1) -> None:
        """Record a completed interval on the simulation clock."""
        self.bus.emit(
            "span", node_id, name, start=start, end=end, duration_s=end - start
        )

    @contextmanager
    def timer(self, name: str, node_id: int = -1) -> Iterator[None]:
        """Span recorded around a ``with`` block (simulation-clock time)."""
        start = self.bus.clock()
        try:
            yield
        finally:
            self.span(name, start, self.bus.clock(), node_id)

    # -- queries -------------------------------------------------------------

    def events_of_kind(self, kind: str) -> list[ObsEvent]:
        return [e for e in self.events if e.kind == kind]

    def counts_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out
