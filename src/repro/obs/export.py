"""Trace export: JSONL events, Chrome ``trace_event`` timelines,
``metrics.json`` and ``manifest.json``.

A trace directory written by :func:`write_trace_dir` contains::

    manifest.json   scale, seed, per-run configs, versions, wall time
    events.jsonl    one ObsEvent per line, in emission order
    metrics.json    the MetricsRegistry dump (counters/gauges/histograms)
    trace.json      Chrome trace_event format — open in chrome://tracing
                    or https://ui.perfetto.dev for a timeline view

The JSONL and metrics files round-trip: :func:`read_events_jsonl`
reconstructs the exact event list, and histogram percentiles in
``metrics.json`` are the registry's exact values (tested in
``tests/obs/test_export_roundtrip.py``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.obs.events import ObsEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.telemetry import Telemetry

__all__ = [
    "write_events_jsonl",
    "read_events_jsonl",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_metrics_json",
    "read_metrics_json",
    "write_manifest",
    "read_manifest",
    "write_trace_dir",
]


def _event_to_obj(event: ObsEvent) -> dict:
    obj = {
        "t": event.time,
        "node": event.node_id,
        "kind": event.kind,
        "run": event.run,
    }
    if event.detail:
        obj["detail"] = event.detail
    if event.fields:
        obj["fields"] = event.fields
    return obj


def _event_from_obj(obj: dict) -> ObsEvent:
    return ObsEvent(
        time=obj["t"],
        node_id=obj["node"],
        kind=obj["kind"],
        detail=obj.get("detail", ""),
        run=obj.get("run", 0),
        fields=obj.get("fields", {}),
    )


def write_events_jsonl(events: Iterable[ObsEvent], path) -> Path:
    """One compact JSON object per event, in order."""
    path = Path(path)
    with path.open("w") as fh:
        for event in events:
            fh.write(json.dumps(_event_to_obj(event), separators=(",", ":")))
            fh.write("\n")
    return path


def read_events_jsonl(path) -> list[ObsEvent]:
    """Reconstruct the event list written by :func:`write_events_jsonl`."""
    events = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(_event_from_obj(json.loads(line)))
    return events


def chrome_trace_events(events: Iterable[ObsEvent]) -> list[dict]:
    """Convert to Chrome ``trace_event`` JSON objects.

    Spans become complete ("X") events; everything else becomes an
    instant ("i") event.  ``pid`` is the run id (each run gets its own
    process lane), ``tid`` the node id (-1, cluster-wide, renders as its
    own track).  Timestamps are microseconds of virtual time.
    """
    out = []
    for event in events:
        if event.kind == "span":
            out.append(
                {
                    "name": event.detail or "span",
                    "cat": "span",
                    "ph": "X",
                    "ts": event.fields.get("start", event.time) * 1e6,
                    "dur": event.fields.get("duration_s", 0.0) * 1e6,
                    "pid": event.run,
                    "tid": event.node_id,
                }
            )
        else:
            out.append(
                {
                    "name": event.detail or event.kind,
                    "cat": event.kind,
                    "ph": "i",
                    "s": "t",
                    "ts": event.time * 1e6,
                    "pid": event.run,
                    "tid": event.node_id,
                    "args": event.fields,
                }
            )
    return out


def write_chrome_trace(events: Iterable[ObsEvent], path) -> Path:
    path = Path(path)
    payload = {"traceEvents": chrome_trace_events(events), "displayTimeUnit": "ms"}
    path.write_text(json.dumps(payload))
    return path


def write_metrics_json(registry, path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(registry.to_dict(), indent=2))
    return path


def read_metrics_json(path) -> dict:
    return json.loads(Path(path).read_text())


def write_manifest(manifest: dict, path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(manifest, indent=2))
    return path


def read_manifest(path) -> dict:
    return json.loads(Path(path).read_text())


def write_trace_dir(directory, telemetry: "Telemetry", manifest: dict) -> dict:
    """Write the full trace layout; returns {artifact name: path}.

    ``manifest`` is augmented with the telemetry's per-run entries and
    event/metric counts before writing.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = dict(manifest)
    manifest.setdefault("runs", telemetry.runs)
    manifest.setdefault("n_runs", len(telemetry.runs))
    manifest.setdefault("n_events", len(telemetry.events))
    manifest.setdefault("n_metrics", len(telemetry.registry))
    return {
        "manifest": write_manifest(manifest, directory / "manifest.json"),
        "events": write_events_jsonl(telemetry.events, directory / "events.jsonl"),
        "metrics": write_metrics_json(telemetry.registry, directory / "metrics.json"),
        "chrome_trace": write_chrome_trace(telemetry.events, directory / "trace.json"),
    }
