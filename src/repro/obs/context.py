"""Ambient telemetry session.

``repro-bench --trace`` must observe runs constructed deep inside the
experiment functions without threading a telemetry object through every
signature.  A session set here is picked up by
:meth:`~repro.mining.hpa.HPARun.run` / :meth:`~repro.mining.npa.NPARun.run`
when no telemetry was attached explicitly.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.telemetry import Telemetry

__all__ = ["current_telemetry", "telemetry_session"]

_CURRENT: "Optional[Telemetry]" = None


def current_telemetry() -> "Optional[Telemetry]":
    """The ambient telemetry session, or ``None`` outside one."""
    return _CURRENT


@contextmanager
def telemetry_session(telemetry: "Telemetry") -> "Iterator[Telemetry]":
    """Make ``telemetry`` ambient for the duration of the ``with`` block;
    sessions nest (the previous one is restored on exit)."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = telemetry
    try:
        yield telemetry
    finally:
        _CURRENT = previous
