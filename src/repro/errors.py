"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing genuine programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event kernel."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(SimulationError):
    """Internal control-flow exception used by ``Environment.run(until=...)``.

    Carries the value of the event that terminated the run.
    """

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(SimulationError):
    """Thrown *into* a process when another process interrupts it.

    The interrupting party supplies an arbitrary ``cause`` describing why
    the target was interrupted (e.g. a migration signal).
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """The object passed to :meth:`Process.interrupt`."""
        return self.args[0]


class ClusterError(ReproError):
    """Base class for errors in the simulated cluster substrate."""


class NetworkError(ClusterError):
    """Raised for malformed network operations (unknown node, bad size)."""


class MemoryLedgerError(ClusterError):
    """Raised when a node's memory ledger would go negative or overflow."""


class DiskError(ClusterError):
    """Raised for invalid disk I/O requests (negative size, bad block)."""


class MiningError(ReproError):
    """Base class for errors in the association-rule mining substrate."""


class ConfigError(MiningError):
    """Raised for contradictory or out-of-range run configurations.

    Every rejection happens at :class:`~repro.runtime.config.RunConfig`
    construction time — before any cluster is built — so a bad
    combination (e.g. a remote pager with zero memory-available nodes)
    can never fail mid-simulation.  Subclasses :class:`MiningError` so
    callers that predate the runtime layer keep working.
    """


class DataGenError(ReproError):
    """Raised for invalid synthetic-data-generator parameters."""


class RemoteMemoryError(ReproError):
    """Base class for errors in the remote-memory subsystem (the paper's core)."""


class SwapError(RemoteMemoryError):
    """Raised for invalid swap-manager operations (unknown line, double swap)."""


class NoMemoryAvailable(RemoteMemoryError):
    """Raised when no memory-available node can accept a swap-out.

    Mirrors the paper's failure mode when every candidate destination has
    signalled a shortage; callers typically fall back to the disk pager.
    """


class MigrationError(RemoteMemoryError):
    """Raised when a migration direction cannot be honoured."""


class HarnessError(ReproError):
    """Raised for invalid experiment configurations in the bench harness."""
