"""RunConfig → ClusterRuntime: one composition root for the whole stack.

Every simulated execution needs the same bring-up: an environment, a
cluster with the configured loss probability, :class:`RemoteStore`s and
:class:`MemoryMonitor`s on the memory-available nodes,
:class:`MonitorClient`s on the application nodes, and a per-app-node
:class:`Pager` + :class:`SwapManager` pair (disk / remote /
remote-update / disk-fallback chains) with shortage-handler wiring.
Before this module existed that block was duplicated verbatim inside
``HPARun.__init__`` and ``NPARun.__init__``; drivers now call
:func:`build_runtime` and own only their mining logic.

Construction order is deliberately identical to the historical drivers
(stores and monitors per memory node, then clients per application
node, then pagers/managers per application node) so simulated behaviour
is bit-identical — pinned by
``tests/integration/test_runtime_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.cluster import Cluster, ClusterDynamics, FailureEvent
from repro.cluster.specs import MB, PAPER_NODE, NodeSpec
from repro.core import (
    DiskPager,
    MemoryManagementTable,
    MemoryMonitor,
    MonitorClient,
    Pager,
    RemoteMemoryPager,
    RemoteStore,
    RemoteUpdatePager,
    SwapManager,
)
from repro.core.placement import make_placement
from repro.core.policies import make_policy
from repro.runtime.config import RunConfig, validate_config
from repro.sim import Environment

__all__ = ["ClusterRuntime", "build_runtime"]


@dataclass
class ClusterRuntime:
    """A fully-wired simulated cluster, ready for a driver to execute on.

    Owns the paper's remote-memory machinery; knows nothing about
    mining.  Drivers (or any custom workload — see the README's custom
    scenario) schedule processes on :attr:`env`, push data through
    :attr:`managers`, and call :meth:`start_services` /
    :meth:`stop_services` around the execution.
    """

    config: RunConfig
    env: Environment
    cluster: Cluster
    #: Application node ids: ``0 .. n_app_nodes-1``.
    app_ids: list[int]
    #: Memory-available node ids: ``n_app_nodes .. n_total-1``.
    mem_ids: list[int]
    #: Per-memory-node guest-line storage (empty when no memory nodes).
    stores: dict[int, RemoteStore]
    #: Per-memory-node availability monitors (paper §4.2).
    monitors: dict[int, MemoryMonitor]
    #: Per-app-node monitor clients holding the availability tables.
    clients: dict[int, MonitorClient]
    #: Per-app-node pager, ``None`` when ``config.pager == "none"``.
    pagers: dict[int, Optional[Pager]]
    #: Per-app-node swap managers (always present; a manager without a
    #: pager simply never evicts).
    managers: dict[int, SwapManager]
    #: The availability-dynamics subsystem (churn traces + failure
    #: events); inert when ``config.churn == "none"`` and no failures
    #: are scheduled, in which case it creates no simulation processes.
    dynamics: ClusterDynamics

    def start_services(self) -> None:
        """Start the availability machinery (clients, then monitors,
        then the cluster dynamics driving the monitors' truth)."""
        for client in self.clients.values():
            client.start()
        for monitor in self.monitors.values():
            monitor.start()
        self.dynamics.start()

    def stop_services(self) -> None:
        """Stop the availability machinery (dynamics first, then
        monitors, then clients)."""
        self.dynamics.stop()
        for monitor in self.monitors.values():
            monitor.stop()
        for client in self.clients.values():
            client.stop()

    def pager_chains(self) -> list[Pager]:
        """Every pager including disk-fallback pagers chained behind
        remote ones, in node order."""
        out: list[Pager] = []
        for a in self.app_ids:
            pager = self.pagers[a]
            if pager is not None:
                out.extend(pager.chain())
        return out

    def total_fault_stats(self) -> tuple[int, float]:
        """(faults, fault_time_s) summed over every pager chain."""
        faults = 0
        fault_time = 0.0
        for pager in self.pager_chains():
            faults += pager.stats.faults
            fault_time += pager.stats.fault_time_s
        return faults, fault_time

    def reset_pass(self) -> None:
        """Per-pass cleanup: local hash tables and remote guest stores."""
        for a in self.app_ids:
            self.managers[a].reset_pass()
        for store in self.stores.values():
            store.clear()


def build_runtime(config: RunConfig) -> ClusterRuntime:
    """Assemble the simulated cluster described by ``config``.

    This is the single source of truth for cluster bring-up: node
    layout, loss probability, stores, monitors, clients, pager
    construction (including the disk-fallback chain), swap managers,
    and shortage-handler wiring.
    """
    validate_config(config)
    env = Environment()
    n_total = config.n_app_nodes + config.n_memory_nodes
    if config.node_memory_factors is None:
        cluster = Cluster(env, n_total)
    else:
        # Heterogeneous memory-node sizing: application nodes keep the
        # paper spec; each memory node scales the 64 MB baseline.
        specs: "list[NodeSpec]" = [PAPER_NODE] * config.n_app_nodes
        for i, factor in enumerate(config.node_memory_factors):
            nbytes = max(1 * MB, int(round(PAPER_NODE.memory_bytes * factor)))
            specs.append(
                replace(
                    PAPER_NODE,
                    name=f"{PAPER_NODE.name} x{factor:g} memory",
                    memory_bytes=nbytes,
                )
            )
        cluster = Cluster(env, n_total, specs=specs)
    if config.loss_probability > 0.0:
        cluster.network.loss_probability = config.loss_probability
    app_ids = list(range(config.n_app_nodes))
    mem_ids = list(range(config.n_app_nodes, n_total))

    cost = config.cost
    stores: dict[int, RemoteStore] = {}
    monitors: dict[int, MemoryMonitor] = {}
    clients: dict[int, MonitorClient] = {}
    if config.n_memory_nodes > 0:
        for m in mem_ids:
            stores[m] = RemoteStore(cluster[m])
            monitors[m] = MemoryMonitor(
                cluster[m], cluster.transport, app_ids, cost,
                interval_s=config.monitor_interval_s,
            )
        for a in app_ids:
            clients[a] = MonitorClient(cluster[a], cluster.transport)

    managers: dict[int, SwapManager] = {}
    pagers: dict[int, Optional[Pager]] = {}
    memory_nodes = {m: cluster[m] for m in mem_ids}
    for a in app_ids:
        table = MemoryManagementTable()
        pager: Optional[Pager] = None
        if config.pager == "disk":
            pager = DiskPager(cluster[a], table, cost)
        elif config.pager in ("remote", "remote-update"):
            cls = (
                RemoteMemoryPager if config.pager == "remote" else RemoteUpdatePager
            )
            fallback = (
                DiskPager(cluster[a], table, cost) if config.disk_fallback else None
            )
            pager = cls(
                cluster[a], table, cost, cluster.network,
                clients[a], make_placement(config.placement),
                stores, memory_nodes, fallback=fallback,
            )
            # Proactive policies (migrate-ahead) drive this pager's
            # migration machinery; the hook is a no-op for the rest.
            pager.placement.attach_pager(pager)
        pagers[a] = pager
        managers[a] = SwapManager(
            cluster[a],
            limit_bytes=config.memory_limit_bytes,
            pager=pager,
            policy=make_policy(config.replacement, seed=config.seed),
            cost=cost,
        )
        # Shortage broadcasts trigger the migration mechanism.
        if pager is not None and a in clients:
            clients[a].shortage_handlers.append(pager.migrate_from)

    dynamics = ClusterDynamics(
        env,
        monitors=monitors,
        mem_ids=mem_ids,
        churn=config.churn,
        failures=tuple(FailureEvent(*f) for f in config.failures),
        seed=config.seed,
    )

    return ClusterRuntime(
        config=config,
        env=env,
        cluster=cluster,
        app_ids=app_ids,
        mem_ids=mem_ids,
        stores=stores,
        monitors=monitors,
        clients=clients,
        pagers=pagers,
        managers=managers,
        dynamics=dynamics,
    )
