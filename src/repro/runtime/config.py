"""Declarative run configuration for the cluster runtime.

:class:`RunConfig` is the single description of one simulated-cluster
execution — workload-independent knobs only (node counts, pager choice,
memory limit, policies, cost model).  Both mining drivers consume it
(:class:`~repro.mining.hpa.HPAConfig` and
:class:`~repro.mining.npa.NPAConfig` are thin subclasses kept for their
import paths), and :func:`~repro.runtime.builder.build_runtime` turns it
into a fully-wired :class:`~repro.runtime.builder.ClusterRuntime`.

Every contradictory combination is rejected here, at construction time,
with a :class:`~repro.errors.ConfigError` — never mid-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.cost_model import PAPER_COSTS, CostModel
from repro.errors import ConfigError

__all__ = [
    "RunConfig",
    "validate_config",
    "PAGERS",
    "REPLACEMENT_POLICIES",
    "PLACEMENT_POLICIES",
    "KERNELS",
]

#: Valid ``pager`` values: the paper's three §5 mechanisms plus "none".
PAGERS = ("none", "disk", "remote", "remote-update")

#: Valid ``replacement`` values (see :func:`repro.core.policies.make_policy`).
REPLACEMENT_POLICIES = ("lru", "fifo", "random")

#: Valid ``placement`` values (see :func:`repro.core.placement.make_placement`).
PLACEMENT_POLICIES = (
    "most-available",
    "round-robin",
    "predictive",
    "load-balancing",
    "migrate-ahead",
)

#: Valid ``kernel`` values (see :mod:`repro.mining.kernels`).
KERNELS = ("vector", "naive")


@dataclass(frozen=True)
class RunConfig:
    """Configuration of one simulated run (paper §5.1 parameters)."""

    minsup: float = 0.01
    n_app_nodes: int = 8
    n_memory_nodes: int = 0
    total_lines: int = 4096
    memory_limit_bytes: Optional[int] = None
    pager: str = "none"  # none | disk | remote | remote-update
    replacement: str = "lru"
    placement: str = "most-available"
    monitor_interval_s: Optional[float] = None
    send_window: int = 4
    max_k: int = 0  # 0 = run to termination
    cost: CostModel = PAPER_COSTS
    seed: int = 0
    #: HPA-ELD skew handling (the method the paper cites for treating
    #: partitioning skew): this fraction of candidates with the highest
    #: estimated frequency is *duplicated* on every node and counted
    #: locally, removing their (dominant) share of the itemset traffic.
    #: 0 disables the variant (plain HPA, the paper's configuration).
    eld_fraction: float = 0.0
    #: Extension beyond the paper: when no memory-available node can
    #: accept an eviction, spill to the local swap disk instead of
    #: failing (the paper assumes lenders always have room).
    disk_fallback: bool = False
    #: UBR cell-loss probability per message attempt (companion-study
    #: extension); lost segments are retransmitted after TCP's RTO.
    loss_probability: float = 0.0
    #: Counting-kernel selection: ``"vector"`` runs the hot path through
    #: :mod:`repro.mining.kernels` (vectorized pair generation, candidate
    #: prefix index, precomputed routing); ``"naive"`` keeps the
    #: per-occurrence ``combinations`` loop.  Results, simulated times,
    #: and message counts are bit-identical — only host wall-clock
    #: differs (pinned by the kernel-equivalence tests).
    kernel: str = "vector"
    #: Background-load trace driving every memory node's ledger over
    #: simulated time (see :func:`repro.cluster.dynamics.parse_trace`):
    #: ``"none"`` (default, the static pre-dynamics cluster) or a spec
    #: like ``"sawtooth:period=0.04,low=0.1,high=0.9"``.
    churn: str = "none"
    #: Mid-pass node failures: ``(at_s, memory_node_index, down_s)``
    #: triples — at ``at_s`` the node stops lending (shortage signal,
    #: guests migrate off), ``down_s`` later it recovers.
    failures: tuple = ()
    #: Heterogeneous memory-node sizing: one multiplicative factor per
    #: memory node applied to the paper node's 64 MB (``None`` = the
    #: uniform cluster).
    node_memory_factors: Optional[tuple] = None

    def __post_init__(self) -> None:
        # Normalise JSON round-trip artefacts (lists -> tuples) before
        # validation so configs hash and compare structurally.
        object.__setattr__(
            self, "failures", tuple(tuple(f) for f in self.failures)
        )
        if self.node_memory_factors is not None:
            object.__setattr__(
                self, "node_memory_factors", tuple(self.node_memory_factors)
            )
        validate_config(self)


def validate_config(config: RunConfig) -> None:
    """Reject out-of-range values and contradictory combinations.

    Raises :class:`~repro.errors.ConfigError` (a
    :class:`~repro.errors.MiningError` subclass) naming the offending
    field(s).  Called by ``RunConfig.__post_init__`` so an invalid
    configuration can never reach :func:`~repro.runtime.builder.build_runtime`.
    """
    if not 0.0 < config.minsup <= 1.0:
        raise ConfigError(f"minsup must be in (0, 1], got {config.minsup}")
    if not 0.0 <= config.eld_fraction <= 1.0:
        raise ConfigError(
            f"eld_fraction must be in [0, 1], got {config.eld_fraction}"
        )
    if config.n_app_nodes <= 0:
        raise ConfigError("need at least one application node")
    if config.n_memory_nodes < 0:
        raise ConfigError(
            f"n_memory_nodes must be >= 0, got {config.n_memory_nodes}"
        )
    if config.total_lines <= 0:
        raise ConfigError(f"total_lines must be positive, got {config.total_lines}")
    if config.max_k < 0:
        raise ConfigError(f"max_k must be >= 0 (0 = unbounded), got {config.max_k}")
    if config.pager not in PAGERS:
        raise ConfigError(f"unknown pager {config.pager!r}; have {PAGERS}")
    if config.replacement not in REPLACEMENT_POLICIES:
        raise ConfigError(
            f"unknown replacement policy {config.replacement!r}; "
            f"have {REPLACEMENT_POLICIES}"
        )
    if config.placement not in PLACEMENT_POLICIES:
        raise ConfigError(
            f"unknown placement policy {config.placement!r}; "
            f"have {PLACEMENT_POLICIES}"
        )
    if config.kernel not in KERNELS:
        raise ConfigError(f"unknown kernel {config.kernel!r}; have {KERNELS}")
    if config.pager in ("remote", "remote-update") and config.n_memory_nodes <= 0:
        raise ConfigError(f"pager {config.pager!r} needs memory-available nodes")
    if config.memory_limit_bytes is not None:
        if config.pager == "none":
            raise ConfigError("a memory limit requires a pager")
        if config.memory_limit_bytes <= 0:
            raise ConfigError(
                f"memory_limit_bytes must be positive, "
                f"got {config.memory_limit_bytes}"
            )
    if config.send_window <= 0:
        raise ConfigError("send window must be positive")
    if config.disk_fallback and config.pager not in ("remote", "remote-update"):
        raise ConfigError("disk_fallback applies only to remote pagers")
    if not 0.0 <= config.loss_probability < 1.0:
        raise ConfigError(
            f"loss_probability must be in [0, 1), got {config.loss_probability}"
        )
    if config.monitor_interval_s is not None:
        if config.monitor_interval_s <= 0:
            raise ConfigError(
                f"monitor_interval_s must be positive, "
                f"got {config.monitor_interval_s}"
            )
        if config.n_memory_nodes <= 0:
            raise ConfigError(
                "monitor_interval_s configures the availability monitors, "
                "which exist only with memory-available nodes "
                "(n_memory_nodes > 0)"
            )
    # Cluster-dynamics axes: churn trace, failures, heterogeneous specs.
    from repro.cluster.dynamics import parse_trace

    trace = parse_trace(config.churn)  # raises ConfigError on a bad spec
    if trace is not None and config.n_memory_nodes <= 0:
        raise ConfigError(
            "a churn trace drives the memory-available nodes' ledgers; "
            "it needs n_memory_nodes > 0"
        )
    for entry in config.failures:
        if len(entry) != 3:
            raise ConfigError(
                f"each failure is (at_s, memory_node_index, down_s), got {entry!r}"
            )
        at_s, node_index, down_s = entry
        if at_s < 0:
            raise ConfigError(f"failure time must be >= 0, got {at_s}")
        if down_s <= 0:
            raise ConfigError(f"failure down-time must be positive, got {down_s}")
        if not (isinstance(node_index, int) and 0 <= node_index < config.n_memory_nodes):
            raise ConfigError(
                f"failure node index {node_index!r} must address one of "
                f"{config.n_memory_nodes} memory nodes"
            )
    if config.node_memory_factors is not None:
        if len(config.node_memory_factors) != config.n_memory_nodes:
            raise ConfigError(
                f"node_memory_factors needs one factor per memory node: "
                f"got {len(config.node_memory_factors)} for "
                f"{config.n_memory_nodes}"
            )
        for factor in config.node_memory_factors:
            if not factor > 0:
                raise ConfigError(
                    f"node memory factors must be positive, got {factor}"
                )
