"""MiningDriver: the execution scaffolding shared by HPA and NPA.

Both parallel Apriori drivers are the *same program* outside their
counting strategy: build a cluster runtime, run pass 1 (local item
counts + all-to-all count-vector exchange), then iterate candidate
passes until no large itemsets remain, collecting per-pass pager deltas
and reporting through the telemetry bus.  This base class owns all of
that; a driver subclass supplies ``driver_name``, ``pass1_channel``,
and ``_run_pass`` (plus its own per-node counting processes).

Historically NPA borrowed HPA's telemetry methods by class-attribute
assignment; inheritance replaces that hack with an actual shared
surface.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from repro.analysis.trace import TraceCollector, UtilizationSampler
from repro.cluster.dynamics import scripted_shortage
from repro.errors import MiningError
from repro.obs import Telemetry, current_telemetry
from repro.obs.telemetry import run_meta
from repro.runtime.builder import ClusterRuntime, build_runtime
from repro.runtime.config import RunConfig
from repro.runtime.results import PassResult, RunResult
from repro.sim import Environment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datagen.corpus import TransactionDatabase
    from repro.mining.itemsets import Itemset

__all__ = ["MiningDriver", "SendWindow"]

#: Number of itemsets whose CPU cost is charged per compute call in the
#: hot loops (keeps simulator event counts low without distorting totals).
CPU_CHUNK = 512


class SendWindow:
    """Bounded number of in-flight asynchronous sends per process."""

    def __init__(self, env: Environment, limit: int) -> None:
        self.env = env
        self.limit = limit
        self._inflight: list = []

    def post(self, gen: Generator) -> Generator:
        """Launch ``gen`` as a process once a window slot frees up."""
        inflight = self._inflight
        if len(inflight) >= self.limit:
            # Compact lazily: dead entries only matter once the window
            # looks full, and any_of must never see an already-dead
            # process.
            inflight[:] = [p for p in inflight if p.is_alive]
            while len(inflight) >= self.limit:
                yield self.env.any_of(inflight)
                inflight[:] = [p for p in inflight if p.is_alive]
        inflight.append(self.env.process(gen))

    def drain(self) -> Generator:
        """Wait for every posted send to finish."""
        alive = [p for p in self._inflight if p.is_alive]
        if alive:
            yield self.env.all_of(alive)
        self._inflight.clear()


class MiningDriver:
    """One single-use parallel-mining execution over a cluster runtime."""

    #: Manifest tag for telemetry run entries.
    driver_name = "driver"
    #: Transport channel used by the pass-1 count-vector exchange (the
    #: two drivers keep their historical channel names so traces stay
    #: comparable across versions).
    pass1_channel = "pass1"

    def __init__(self, db: "TransactionDatabase", config: RunConfig) -> None:
        if len(db) < config.n_app_nodes:
            raise MiningError("fewer transactions than application nodes")
        self.db = db
        self.config = config
        self.runtime: ClusterRuntime = build_runtime(config)
        # Aliases into the runtime, kept for the (widely used) historical
        # attribute surface: tests, telemetry attach, examples.
        self.env = self.runtime.env
        self.cluster = self.runtime.cluster
        self.app_ids = self.runtime.app_ids
        self.mem_ids = self.runtime.mem_ids
        self.stores = self.runtime.stores
        self.monitors = self.runtime.monitors
        self.clients = self.runtime.clients
        self.pagers = self.runtime.pagers
        self.managers = self.runtime.managers
        self.partitions = db.partition(config.n_app_nodes)
        self.minsup_count = max(1, int(math.ceil(config.minsup * len(db))))
        self.result: Optional[RunResult] = None
        #: Optional list of (virtual_time, mem_node_id) shortage signals
        #: injected during the run (Figure 5's experiment).
        self.shortage_schedule: list[tuple[float, int]] = []
        #: Instrumentation (populated by :meth:`enable_telemetry` /
        #: :meth:`enable_instrumentation`).
        self.telemetry: Optional[Telemetry] = None
        self.trace: Optional[TraceCollector] = None
        self.sampler: Optional[UtilizationSampler] = None

    # -- instrumentation ---------------------------------------------------

    def enable_telemetry(
        self,
        telemetry: Optional[Telemetry] = None,
        sample_interval_s: Optional[float] = None,
    ) -> Telemetry:
        """Wire this run into a telemetry session (event bus + metrics).

        With no argument a fresh private :class:`Telemetry` is created;
        passing an existing one lets several consecutive runs share one
        trace (how ``repro-bench --trace`` collects a whole sweep).
        Hooks every event source, including disk-fallback pagers chained
        behind remote ones.  Call before :meth:`run`.
        """
        if telemetry is None:
            telemetry = Telemetry()
        self.telemetry = telemetry
        telemetry.attach(self, run_meta(self.driver_name, self.config))
        if sample_interval_s is not None:
            self.sampler = UtilizationSampler(self.cluster, sample_interval_s)
        return telemetry

    def enable_instrumentation(
        self, sample_interval_s: Optional[float] = None
    ) -> TraceCollector:
        """Attach a :class:`TraceCollector` (and optionally a periodic
        :class:`UtilizationSampler`) to this run.

        The collector is one subscriber on the telemetry event bus —
        pager events (faults, swap-outs, migrations), phase boundaries,
        and everything else the bus carries are recorded; call before
        :meth:`run`.
        """
        if self.telemetry is None:
            self.enable_telemetry(sample_interval_s=sample_interval_s)
        elif sample_interval_s is not None and self.sampler is None:
            self.sampler = UtilizationSampler(self.cluster, sample_interval_s)
        self.trace = TraceCollector(self.env)
        self.telemetry.bus.subscribe(self.trace.subscriber())
        return self.trace

    def _trace_phase(self, name: str) -> None:
        if self.telemetry is not None:
            self.telemetry.phase_mark(name)
        elif self.trace is not None:
            self.trace.record(-1, "phase", name)

    def _span(self, name: str, start: float, end: float) -> None:
        if self.telemetry is not None:
            self.telemetry.span(name, start, end)

    # -- public API --------------------------------------------------------

    def run(self) -> RunResult:
        """Execute to completion and return the mining result.

        A run object is single-use: the simulated cluster's state is
        consumed by the execution.
        """
        if self.result is not None:
            raise MiningError("this run has already executed; build a new one")
        if self.telemetry is None:
            ambient = current_telemetry()
            if ambient is not None:
                self.enable_telemetry(ambient)
        self.runtime.start_services()
        if self.sampler is not None:
            self.sampler.start()
        # Scripted shortages run as degenerate one-shot traces: a single
        # step to 100 % pressure at the scheduled time, event-for-event
        # identical to the historical harness-side injector (pinned by
        # the runtime goldens).  Continuous dynamics — churn traces and
        # failure events — were started by ``start_services`` above.
        for t, node_id in self.shortage_schedule:
            self.env.process(scripted_shortage(self.env, self.monitors, t, node_id))
        main = self.env.process(self._main())
        self.env.run(until=main)
        self.runtime.stop_services()
        if self.sampler is not None:
            # stop() takes the closing snapshot itself.
            self.sampler.stop()
        assert self.result is not None
        if self.telemetry is not None:
            faults, fault_time = self.runtime.total_fault_stats()
            self.telemetry.end_run(
                total_time_s=self.result.total_time_s,
                passes=len(self.result.passes),
                n_large=len(self.result.large_itemsets),
                faults=faults,
                fault_time_s=fault_time,
            )
        return self.result

    # -- orchestration -----------------------------------------------------

    def _barrier(self, generators: list[Generator]) -> Generator:
        procs = [self.env.process(g) for g in generators]
        yield self.env.all_of(procs)
        return [p.value for p in procs]

    def _main(self) -> Generator:
        cfg = self.config
        start = self.env.now
        passes: list[PassResult] = []
        all_large: dict[Itemset, int] = {}

        # If monitors exist, give the first availability broadcast time to
        # land before any swapping can be needed (the paper's monitors run
        # from machine boot; ours start with the run).
        if self.monitors:
            yield self.env.timeout(
                2 * cfg.cost.monitor_cpu_per_message_s * len(self.app_ids) + 2e-3
            )

        # ---- pass 1 (identical in both drivers) ----
        t0 = self.env.now
        local_counts = yield from self._barrier(
            [self._pass1_node(a) for a in self.app_ids]
        )
        global_counts = np.sum(local_counts, axis=0)
        large_items = np.nonzero(global_counts >= self.minsup_count)[0]
        l_prev: dict[Itemset, int] = {
            (int(i),): int(global_counts[i]) for i in large_items
        }
        all_large.update(l_prev)
        self._span("pass1", t0, self.env.now)
        passes.append(
            PassResult(
                k=1,
                n_candidates=self.db.n_items,
                per_node_candidates=[],
                n_large=len(l_prev),
                start_time=t0,
                end_time=self.env.now,
            )
        )

        # ---- passes k >= 2 ----
        k = 2
        while l_prev and (cfg.max_k <= 0 or k <= cfg.max_k):
            pass_result, l_now = yield from self._run_pass(k, l_prev)
            passes.append(pass_result)
            all_large.update(l_now)
            if pass_result.n_candidates == 0:
                break
            l_prev = l_now
            k += 1

        self.result = RunResult(
            config=cfg,
            large_itemsets=all_large,
            passes=passes,
            total_time_s=self.env.now - start,
        )
        return None

    def _run_pass(self, k: int, l_prev: "dict[Itemset, int]") -> Generator:
        """Run one candidate pass; returns ``(PassResult, L_k)``.

        The counting strategy — candidate placement, communication,
        reduction — is the whole difference between drivers.
        """
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator function

    # -- shared per-node phase processes -----------------------------------

    def _scan_blocks(self, a: int) -> Generator:
        """Sequential disk scan of the local partition, yielding per-block
        transaction index ranges."""
        part = self.partitions[a]
        node = self.cluster[a]
        cost = self.config.cost
        block_bytes = cost.disk_io_block_bytes
        n = len(part)
        if n == 0:
            return []
        avg_txn_bytes = max(1.0, part.size_bytes() / n)
        txns_per_block = max(1, int(block_bytes / avg_txn_bytes))
        ranges = []
        i = 0
        while i < n:
            j = min(n, i + txns_per_block)
            yield from node.data_disk.read(block_bytes, sequential=True)
            ranges.append((i, j))
            i = j
        return ranges

    def _pass1_node(self, a: int) -> Generator:
        """Scan the partition, count items, exchange count vectors."""
        part = self.partitions[a]
        node = self.cluster[a]
        cost = self.config.cost
        # Disk scan + per-item CPU.
        yield from self._scan_blocks(a)
        yield from node.compute(cost.cpu_count_per_itemset_s * part.total_items)
        counts = part.item_counts()
        # Exchange: send the count vector to every other application node.
        window = SendWindow(self.env, self.config.send_window)
        vec_bytes = 4 * self.db.n_items
        for b in self.app_ids:
            if b == a:
                continue
            yield from window.post(
                self.cluster.transport.send(a, b, self.pass1_channel, None, vec_bytes)
            )
        yield from window.drain()
        # Receive the other nodes' vectors (timing only; the orchestrator
        # sums the real vectors).
        for _ in range(len(self.app_ids) - 1):
            yield self.cluster.transport.recv(a, self.pass1_channel)
        return counts

    def _insert_candidates(self, a: int, owned) -> Generator:
        """Insert ``(itemset, line)`` pairs through the swap manager,
        charging CPU in :data:`CPU_CHUNK` batches."""
        node = self.cluster[a]
        mgr = self.managers[a]
        cost = self.config.cost
        inserted = 0
        for itemset, line in owned:
            op = mgr.insert_candidate(itemset, line)
            if op is not None:
                yield from op
            inserted += 1
            if inserted % CPU_CHUNK == 0:
                yield from node.compute(cost.cpu_count_per_itemset_s * CPU_CHUNK)
        if inserted % CPU_CHUNK:
            yield from node.compute(
                cost.cpu_count_per_itemset_s * (inserted % CPU_CHUNK)
            )

    # -- helpers -----------------------------------------------------------

    def _pager_snapshot(self, a: int) -> tuple:
        pager = self.pagers[a]
        if pager is None:
            return (0, 0, 0, 0.0)
        s = pager.stats
        return (s.faults, s.swap_outs, s.update_messages, s.fault_time_s)

    def _l1_mask(self, l_prev: "dict[Itemset, int]") -> np.ndarray:
        mask = np.zeros(self.db.n_items, dtype=bool)
        for itemset in l_prev:
            mask[itemset[0]] = True
        return mask
