"""Persistent, content-addressed result store for scenario runs.

One :class:`ResultStore` is a directory of ``<sha256>.json`` files, one
per executed :class:`~repro.runtime.scenarios.Scenario`, keyed by the
SHA-256 of the scenario's canonical JSON (:meth:`Scenario.cache_key` —
the cosmetic ``name``/``description`` are excluded, so two scenarios
that execute identically share one entry).  Each file is self-describing
(it carries the scenario dict alongside the result) and written
atomically, so a killed sweep leaves at worst one ignorable partial
temp file and every completed run durable — which is what makes
``repro-bench --resume`` re-run only the missing configurations.

The store is the *second* cache tier: the in-memory
:class:`~repro.runtime.scenarios.ScenarioCache` sits above it and the
actual simulation below.  :func:`~repro.runtime.scenarios.run_scenario`
consults the ambient store (:func:`result_store_session`) on a memory
miss, and populates both tiers after executing.

Serialisation is exact: JSON floats round-trip through ``repr`` without
loss, so a result loaded from disk compares equal (``==``) to the
original object and renders byte-identical experiment reports — the
property the sweep engine's parallel executor relies on
(:mod:`repro.harness.sweep.engine` ships results between processes
through the same codec).
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Optional

from repro.obs import current_telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.results import RunResult
    from repro.runtime.scenarios import Scenario

__all__ = [
    "ResultStore",
    "result_to_dict",
    "result_from_dict",
    "config_to_dict",
    "config_from_dict",
    "current_result_store",
    "result_store_session",
]

#: Bumped when the on-disk layout changes; mismatching entries are
#: treated as misses and overwritten.  Format 2 removed the per-pass
#: ``*_wall_s`` host wall-clock fields: stored results are now pure
#: functions of the scenario, with host timing measured harness-side
#: (:mod:`repro.harness.wallclock`).
STORE_FORMAT = 2


# ---------------------------------------------------------------------------
# Exact JSON codec for run results
# ---------------------------------------------------------------------------

def config_to_dict(config) -> dict:
    """JSON-safe dict of a :class:`~repro.runtime.config.RunConfig`
    (or one of its driver subclasses, recorded so equality survives)."""
    from dataclasses import asdict

    d = asdict(config)
    d["__class__"] = type(config).__name__
    return d


def config_from_dict(data: dict):
    """Rebuild the exact config object :func:`config_to_dict` captured."""
    from repro.analysis.cost_model import CostModel
    from repro.mining.hpa import HPAConfig
    from repro.mining.npa import NPAConfig
    from repro.runtime.config import RunConfig

    classes = {
        "RunConfig": RunConfig,
        "HPAConfig": HPAConfig,
        "NPAConfig": NPAConfig,
    }
    d = dict(data)
    cls = classes[d.pop("__class__", "RunConfig")]
    cost = CostModel(**d.pop("cost"))
    return cls(cost=cost, **d)


def result_to_dict(result: "RunResult") -> dict:
    """JSON-safe dict of a :class:`~repro.runtime.results.RunResult`.

    Itemset keys become sorted ``[items, count]`` pairs so the encoding
    is canonical; all floats survive exactly (JSON uses ``repr``).
    """
    from dataclasses import asdict

    return {
        "config": config_to_dict(result.config),
        "large_itemsets": [
            [list(itemset), count]
            for itemset, count in sorted(result.large_itemsets.items())
        ],
        "passes": [asdict(p) for p in result.passes],
        "total_time_s": result.total_time_s,
    }


def result_from_dict(data: dict) -> "RunResult":
    """Rebuild a result that compares equal to the stored original."""
    from repro.runtime.results import PassResult, RunResult

    return RunResult(
        config=config_from_dict(data["config"]),
        large_itemsets={
            tuple(items): count for items, count in data["large_itemsets"]
        },
        passes=[PassResult(**p) for p in data["passes"]],
        total_time_s=data["total_time_s"],
    )


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

class ResultStore:
    """Directory of content-addressed scenario results.

    Like the in-memory :class:`~repro.runtime.scenarios.ScenarioCache`,
    the store counts hits and misses locally (:meth:`stats`) and on the
    ambient telemetry registry (``result_store_hits`` /
    ``result_store_misses``) so a resumed sweep can *prove* how much
    work it skipped.
    """

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # -- addressing --------------------------------------------------------

    @staticmethod
    def key_for(scenario: "Scenario") -> str:
        """Content address: SHA-256 of the scenario's canonical JSON."""
        return hashlib.sha256(scenario.cache_key().encode()).hexdigest()

    def path_for(self, scenario: "Scenario") -> Path:
        """The entry file this scenario maps to (may not exist yet)."""
        return self.path_for_key(self.key_for(scenario))

    def path_for_key(self, key: str) -> Path:
        """The entry file for a raw content address (the addressing the
        work queue and the HTTP mode share with the store)."""
        return self.path / f"{key}.json"

    @property
    def queue_path(self) -> Path:
        """Where the lease-based work queue keeps its state for this
        store (:class:`repro.harness.sweep.queue.WorkQueue`): a
        subdirectory, so the top-level ``*.json`` globs — entry counts,
        :meth:`clear`, :meth:`gc` — never confuse tasks with results."""
        return self.path / "queue"

    # -- access ------------------------------------------------------------

    def _count(self, metric: str) -> None:
        telemetry = current_telemetry()
        if telemetry is not None:
            telemetry.registry.counter(metric).inc()

    def get(self, scenario: "Scenario") -> "Optional[RunResult]":
        """The stored result, or ``None``; partial/foreign files are
        misses (a killed writer never poisons the store)."""
        entry = self.path_for(scenario)
        try:
            payload = json.loads(entry.read_text())
            if payload.get("format") != STORE_FORMAT:
                raise ValueError(f"unknown store format {payload.get('format')}")
            result = result_from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            self._count("result_store_misses")
            return None
        self.hits += 1
        self._count("result_store_hits")
        return result

    def put(self, scenario: "Scenario", result: "RunResult") -> Path:
        """Persist ``result`` atomically (write temp file, then rename)."""
        entry = self.path_for(scenario)
        payload = {
            "format": STORE_FORMAT,
            "scenario": scenario.to_dict(),
            "result": result_to_dict(result),
        }
        tmp = entry.with_suffix(f".tmp-{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        os.replace(tmp, entry)
        self.writes += 1
        self._count("result_store_writes")
        return entry

    def read_payload(self, key: str) -> "Optional[dict]":
        """The raw self-describing payload stored under a content
        address, or ``None`` when the entry is absent, unreadable, or
        from another :data:`STORE_FORMAT` (the read-only HTTP mode's
        scenario-key lookup)."""
        try:
            payload = json.loads(self.path_for_key(key).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("format") != STORE_FORMAT:
            return None
        return payload

    def keys(self) -> "list[str]":
        """Every stored content address, sorted."""
        return sorted(entry.stem for entry in self.path.glob("*.json"))

    def __contains__(self, scenario: "Scenario") -> bool:
        return self.path_for(scenario).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.path.glob("*.json"))

    def clear(self) -> None:
        """Delete every entry (hit/miss counters are kept)."""
        for entry in self.path.glob("*.json"):
            entry.unlink()

    def gc(self, now: float, tmp_age_s: float = 3600.0) -> dict:
        """Compact the entry directory: drop orphaned temp files and
        entries from another :data:`STORE_FORMAT`.

        ``now`` is the caller's host wall-clock (the runtime layer never
        reads host time itself — ``repro-bench --store-gc`` passes it
        in).  Temp files younger than ``tmp_age_s`` are kept: they may
        belong to a live writer mid-:meth:`put`.  Queue state lives
        under :attr:`queue_path` and is compacted separately by
        :func:`repro.harness.sweep.queue.store_gc`, which wraps this.
        """
        removed_tmp = 0
        for tmp in self.path.glob("*.tmp-*"):
            try:
                if now - tmp.stat().st_mtime >= tmp_age_s:
                    tmp.unlink()
                    removed_tmp += 1
            except OSError:
                continue
        removed_entries = 0
        kept = 0
        for entry in self.path.glob("*.json"):
            try:
                payload = json.loads(entry.read_text())
                ok = isinstance(payload, dict) \
                    and payload.get("format") == STORE_FORMAT
            except (OSError, ValueError):
                ok = False
            if ok:
                kept += 1
                continue
            try:
                entry.unlink()
                removed_entries += 1
            except OSError:
                continue
        return {
            "entries_kept": kept,
            "entries_removed": removed_entries,
            "tmp_removed": removed_tmp,
        }

    def stats(self) -> dict:
        """Hit/miss/write counters plus the current entry count."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "entries": len(self),
            "path": str(self.path),
        }

    def entry_stats(self) -> "list[dict]":
        """Per-entry sizes, sorted by content address: one
        ``{"key", "bytes", "scenario"}`` dict per stored result (the
        ``repro-bench --store-stats`` rows).  The scenario summary comes
        from the entry's self-describing payload; unreadable or partial
        files are skipped rather than reported."""
        rows: "list[dict]" = []
        for entry in sorted(self.path.glob("*.json")):
            try:
                size = entry.stat().st_size
                payload = json.loads(entry.read_text())
                scenario = payload.get("scenario", {})
            except (OSError, ValueError):
                continue
            rows.append({
                "key": entry.stem,
                "bytes": size,
                "scenario": {
                    k: scenario.get(k)
                    for k in ("driver", "scale", "pager", "paper_mb", "seed")
                },
            })
        return rows


# ---------------------------------------------------------------------------
# Ambient store (mirrors repro.obs.context's telemetry session)
# ---------------------------------------------------------------------------

_CURRENT: Optional[ResultStore] = None


def current_result_store() -> Optional[ResultStore]:
    """The ambient persistent store, or ``None`` outside a session."""
    return _CURRENT


@contextmanager
def result_store_session(
    store: "ResultStore | str | os.PathLike[str] | None",
) -> Iterator[Optional[ResultStore]]:
    """Make ``store`` (an object or a directory path) ambient for the
    ``with`` block.  Sessions nest; ``None`` leaves the ambient store
    unchanged so callers can wrap unconditionally."""
    global _CURRENT
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)
    previous = _CURRENT
    if store is not None:
        _CURRENT = store
    try:
        yield _CURRENT
    finally:
        _CURRENT = previous
