"""Named, JSON-serialisable run scenarios and a bounded result cache.

A :class:`Scenario` is a declarative description of one driver execution
against one workload scale — driver choice, pager, memory-node count,
the paper-MB usage limit, shortage schedule, and the knobs the ablations
sweep.  The harness, the benchmark suite, and the examples all ask for
runs through :func:`run_scenario` rather than hand-building configs, so
one execution is shared by every consumer that needs it.

This replaces the old ``functools.lru_cache`` memoisation of the
harness's ``_run_cached`` (positional-argument keyed, unbounded
observability): the cache here is explicit, sized, clearable
(:func:`clear_cache`), and reports hits/misses both locally
(:func:`cache_stats`) and as ``scenario_cache_hits`` /
``scenario_cache_misses`` counters on the ambient telemetry session
when one is active.

Driver and workload imports happen lazily inside :func:`run_scenario`
(``repro.harness`` imports this package at import time).
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import asdict, dataclass, replace
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import ConfigError
from repro.obs import current_telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.results import RunResult

__all__ = [
    "Scenario",
    "ScenarioCache",
    "run_scenario",
    "lookup_scenario",
    "install_result",
    "clear_cache",
    "cache_stats",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "paper_limited",
    "SCENARIOS",
]

#: Drivers a scenario may name, mapped lazily to their run classes.
DRIVERS = ("hpa", "npa")


@dataclass(frozen=True)
class Scenario:
    """One named simulated execution, serialisable to/from JSON."""

    #: Registry key (cosmetic for anonymous one-off scenarios).
    name: str = ""
    description: str = ""
    driver: str = "hpa"  # hpa | npa
    #: Workload scale name from :data:`repro.harness.scales.SCALES`.
    scale: str = "small"
    pager: str = "none"
    n_memory_nodes: int = 0
    #: Per-node memory-usage limit in the paper's MB units, scaled to
    #: this workload by ``PreparedWorkload.limit_bytes``; ``None`` = no
    #: limit.
    paper_mb: Optional[float] = None
    replacement: str = "lru"
    monitor_interval_s: Optional[float] = None
    message_block_bytes: Optional[int] = None
    #: ``(virtual_time, memory_node_index)`` shortage injections; the
    #: index selects from the run's ``mem_ids``.
    shortages: tuple = ()
    #: Swap-destination policy (see
    #: :data:`repro.runtime.config.PLACEMENT_POLICIES`).
    placement: str = "most-available"
    #: Background-load trace spec for the memory nodes
    #: (see :func:`repro.cluster.dynamics.parse_trace`); ``"none"``
    #: keeps the static pre-dynamics cluster.
    churn: str = "none"
    #: Mid-pass node failures: ``(at_s, memory_node_index, down_s)``.
    failures: tuple = ()
    eld_fraction: float = 0.0
    loss_probability: float = 0.0
    #: 2 = the paper's §5 experiments (pass 2 is the measured pass).
    max_k: int = 2
    #: Override the scale's application-node count (scaling sweeps).
    n_app_nodes: Optional[int] = None
    #: Override the scale's hash-line count (scaling sweeps).
    total_lines: Optional[int] = None
    #: Override the scale's workload seed (the multi-seed report axis);
    #: ``None`` runs at the scale's default seed.  Regenerates the
    #: transaction database, so every downstream quantity resamples.
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.driver not in DRIVERS:
            raise ConfigError(f"unknown driver {self.driver!r}; have {DRIVERS}")
        # Normalise JSON round-trip artefacts: lists -> nested tuples.
        object.__setattr__(
            self, "shortages", tuple(tuple(s) for s in self.shortages)
        )
        object.__setattr__(
            self, "failures", tuple(tuple(f) for f in self.failures)
        )

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        return {k: (list(v) if isinstance(v, tuple) else v)
                for k, v in asdict(self).items()}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        unknown = set(data) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise ConfigError(f"unknown scenario field(s): {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def with_seed(self, seed: Optional[int]) -> "Scenario":
        """This scenario at ``seed`` (the multi-seed sweep axis); the
        cosmetic name/description are dropped like :func:`paper_limited`
        does, so seeded variants share no registry identity."""
        if seed is None or seed == self.seed:
            return self
        return replace(self, name="", seed=seed)

    def cache_key(self) -> str:
        """Canonical key: every field that affects the execution (the
        cosmetic ``name``/``description`` are excluded)."""
        d = self.to_dict()
        d.pop("name")
        d.pop("description")
        return json.dumps(d, sort_keys=True)

    # -- execution ---------------------------------------------------------

    def build_config(self, prep):
        """The driver config for this scenario against ``prep`` (a
        :class:`~repro.harness.scales.PreparedWorkload`)."""
        from repro.analysis.cost_model import PAPER_COSTS
        from repro.mining.hpa import HPAConfig
        from repro.mining.npa import NPAConfig

        scale = prep.scale
        cost = PAPER_COSTS
        if self.message_block_bytes is not None:
            cost = cost.with_overrides(message_block_bytes=self.message_block_bytes)
        limit = None if self.paper_mb is None else prep.limit_bytes(self.paper_mb)
        cls = NPAConfig if self.driver == "npa" else HPAConfig
        return cls(
            minsup=scale.minsup,
            n_app_nodes=self.n_app_nodes or scale.n_app_nodes,
            total_lines=self.total_lines or scale.total_lines,
            max_k=self.max_k,
            seed=scale.seed if self.seed is None else self.seed,
            pager=self.pager,
            n_memory_nodes=self.n_memory_nodes,
            memory_limit_bytes=limit,
            replacement=self.replacement,
            placement=self.placement,
            churn=self.churn,
            failures=self.failures,
            monitor_interval_s=self.monitor_interval_s,
            cost=cost,
            eld_fraction=self.eld_fraction,
            loss_probability=self.loss_probability,
        )

    def execute(self) -> "RunResult":
        """Run this scenario uncached."""
        from repro.harness.scales import prepare_workload
        from repro.mining.hpa import HPARun
        from repro.mining.npa import NPARun

        prep = prepare_workload(self.scale, self.seed)
        cls = NPARun if self.driver == "npa" else HPARun
        run = cls(prep.db, self.build_config(prep))
        for t, idx in self.shortages:
            run.shortage_schedule.append((t, run.mem_ids[idx]))
        return run.run()


class ScenarioCache:
    """Explicit LRU cache of scenario results.

    Unlike the ``lru_cache`` it replaced, this cache is inspectable
    (:meth:`stats`), clearable mid-session, and reports hit/miss
    counters to the ambient telemetry registry so ``repro-bench
    --trace`` manifests show how much work was actually executed.
    """

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[str, RunResult]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def _count(self, metric: str) -> None:
        telemetry = current_telemetry()
        if telemetry is not None:
            telemetry.registry.counter(metric).inc()

    def get_or_run(
        self, scenario: Scenario, execute: Callable[[], "RunResult"]
    ) -> "RunResult":
        key = scenario.cache_key()
        found = self._entries.get(key)
        if found is not None:
            self.hits += 1
            self._count("scenario_cache_hits")
            self._entries.move_to_end(key)
            return found
        self.misses += 1
        self._count("scenario_cache_misses")
        result = execute()
        self._store(key, result)
        return result

    def peek(self, scenario: Scenario) -> "Optional[RunResult]":
        """The cached result or ``None``; counts a hit when found but
        never a miss (probing is not a decision to execute)."""
        found = self._entries.get(scenario.cache_key())
        if found is not None:
            self.hits += 1
            self._count("scenario_cache_hits")
            self._entries.move_to_end(scenario.cache_key())
        return found

    def put(self, scenario: Scenario, result: "RunResult") -> None:
        """Insert an externally-computed result (no hit/miss counted)."""
        self._store(scenario.cache_key(), result)

    def _store(self, key: str, result: "RunResult") -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every cached result (hit/miss counters are kept)."""
        self._entries.clear()

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._entries),
            "maxsize": self.maxsize,
        }


#: The process-wide result cache used by :func:`run_scenario`.
_CACHE = ScenarioCache(maxsize=256)


def _through_store(scenario: Scenario) -> "RunResult":
    """Second cache tier: the ambient persistent result store.

    On a memory-cache miss, consult the on-disk store set up by
    :func:`repro.runtime.store.result_store_session`; only execute the
    simulation when both tiers miss, then populate the store so the run
    is durable (the ``--resume`` contract).
    """
    from repro.runtime.store import current_result_store

    store = current_result_store()
    if store is None:
        return scenario.execute()
    found = store.get(scenario)
    if found is not None:
        return found
    result = scenario.execute()
    store.put(scenario, result)
    return result


def run_scenario(scenario: Scenario, cache: bool = True) -> "RunResult":
    """Execute ``scenario`` through the cache tiers.

    This is the *single* execution path shared by the experiments, the
    sweep engine, the benchmarks, and the examples: in-memory
    :class:`ScenarioCache` first, then the ambient persistent
    :class:`~repro.runtime.store.ResultStore` (when a session is
    active), then the actual simulation.  ``cache=False`` bypasses both
    tiers.
    """
    if not cache:
        return scenario.execute()
    return _CACHE.get_or_run(scenario, lambda: _through_store(scenario))


def lookup_scenario(scenario: Scenario) -> "Optional[RunResult]":
    """Probe both cache tiers without executing (the sweep engine uses
    this to decide what to submit to worker processes)."""
    from repro.runtime.store import current_result_store

    found = _CACHE.peek(scenario)
    if found is not None:
        return found
    store = current_result_store()
    if store is None:
        return None
    result = store.get(scenario)
    if result is not None:
        _CACHE.put(scenario, result)
    return result


def install_result(scenario: Scenario, result: "RunResult") -> None:
    """Populate both cache tiers with an externally-computed result
    (how parallel sweep workers' results enter the parent's caches)."""
    from repro.runtime.store import current_result_store

    _CACHE.put(scenario, result)
    store = current_result_store()
    if store is not None and scenario not in store:
        store.put(scenario, result)


def clear_cache() -> None:
    """Drop every cached scenario result (``repro-bench --trace`` uses
    this to force real executions into the telemetry stream)."""
    _CACHE.clear()


def cache_stats() -> dict:
    """Hit/miss/size counters of the scenario cache."""
    return _CACHE.stats()


# ---------------------------------------------------------------------------
# Catalogue
# ---------------------------------------------------------------------------

#: Named scenarios: the configurations the paper's §5 evaluation keeps
#: returning to, addressable from the CLI, benchmarks, and examples.
SCENARIOS: "OrderedDict[str, Scenario]" = OrderedDict()


def register_scenario(scenario: Scenario) -> Scenario:
    """Add ``scenario`` to the catalogue (name must be unique)."""
    if not scenario.name:
        raise ConfigError("a registered scenario needs a name")
    if scenario.name in SCENARIOS:
        raise ConfigError(f"scenario {scenario.name!r} is already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a catalogue scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; have {sorted(SCENARIOS)}"
        ) from None


def list_scenarios() -> "list[Scenario]":
    """Catalogue scenarios in registration order."""
    return list(SCENARIOS.values())


for _s in (
    Scenario(
        name="baseline",
        description="HPA, no memory limit, no pager (the reference run)",
    ),
    Scenario(
        name="disk-swap",
        description="HPA swapping to the local SCSI disk (Fig. 4 baseline)",
        pager="disk",
    ),
    Scenario(
        name="remote-swap",
        description="HPA with dynamic remote-memory swapping (§5.2)",
        pager="remote", n_memory_nodes=4,
    ),
    Scenario(
        name="remote-update",
        description="HPA with remote update operations (§5.3, the winner)",
        pager="remote-update", n_memory_nodes=4,
    ),
    Scenario(
        name="migration",
        description="remote update with two mid-pass shortages (Fig. 5)",
        pager="remote-update", n_memory_nodes=4,
        shortages=((0.05, 0), (0.09, 1)),
    ),
    Scenario(
        name="npa-baseline",
        description="NPA, full candidate duplication, no limit (§2.2)",
        driver="npa",
    ),
    Scenario(
        name="npa-remote-update",
        description="NPA under remote update paging (stress baseline)",
        driver="npa", pager="remote-update", n_memory_nodes=4,
    ),
    Scenario(
        name="churning",
        description="remote update under sawtooth background load",
        pager="remote-update", n_memory_nodes=4,
        churn="sawtooth:period=0.04,low=0.1,high=0.9",
        placement="predictive",
    ),
    Scenario(
        name="node-failure",
        description="remote update with a mid-pass node failure + recovery",
        pager="remote-update", n_memory_nodes=4,
        failures=((0.05, 0, 0.04),),
    ),
):
    register_scenario(_s)
del _s


def paper_limited(scenario: Scenario, paper_mb: float) -> Scenario:
    """``scenario`` with a paper-MB memory limit applied (the sweeps in
    Figures 3-5 are catalogue scenarios swept over this knob)."""
    return replace(scenario, name="", paper_mb=paper_mb)
