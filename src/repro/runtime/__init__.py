"""The cluster runtime layer: declarative configs -> wired clusters.

This package is the composition root between the remote-memory
machinery (:mod:`repro.core`, :mod:`repro.cluster`) and the mining
drivers (:mod:`repro.mining.hpa`, :mod:`repro.mining.npa`):

- :class:`~repro.runtime.config.RunConfig` — one validated, declarative
  description of a simulated execution (:class:`~repro.errors.ConfigError`
  on any contradictory combination);
- :func:`~repro.runtime.builder.build_runtime` — turns a config into a
  :class:`~repro.runtime.builder.ClusterRuntime` (env, cluster, stores,
  monitors, clients, pagers, swap managers, shortage wiring);
- :class:`~repro.runtime.driver.MiningDriver` — the run scaffolding both
  drivers share (pass loop, barriers, telemetry, shortage injection);
- :class:`~repro.runtime.results.PassResult` /
  :class:`~repro.runtime.results.RunResult` — driver-independent result
  types;
- :class:`~repro.runtime.scenarios.Scenario` and
  :func:`~repro.runtime.scenarios.run_scenario` — named, serialisable
  run descriptions with an explicit, bounded, clearable result cache;
- :class:`~repro.runtime.store.ResultStore` — the persistent,
  content-addressed second cache tier beneath the in-memory
  :class:`~repro.runtime.scenarios.ScenarioCache`, activated with
  :func:`~repro.runtime.store.result_store_session` (what makes sweeps
  resumable across processes and invocations).
"""

from repro.runtime.config import (
    KERNELS,
    PAGERS,
    PLACEMENT_POLICIES,
    REPLACEMENT_POLICIES,
    RunConfig,
    validate_config,
)
from repro.runtime.results import PassResult, RunResult
from repro.runtime.builder import ClusterRuntime, build_runtime
from repro.runtime.driver import MiningDriver, SendWindow
from repro.runtime.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioCache,
    cache_stats,
    clear_cache,
    get_scenario,
    install_result,
    list_scenarios,
    lookup_scenario,
    paper_limited,
    register_scenario,
    run_scenario,
)
from repro.runtime.store import (
    ResultStore,
    current_result_store,
    result_from_dict,
    result_store_session,
    result_to_dict,
)

__all__ = [
    "RunConfig",
    "validate_config",
    "PAGERS",
    "REPLACEMENT_POLICIES",
    "PLACEMENT_POLICIES",
    "KERNELS",
    "PassResult",
    "RunResult",
    "ClusterRuntime",
    "build_runtime",
    "MiningDriver",
    "SendWindow",
    "Scenario",
    "ScenarioCache",
    "run_scenario",
    "lookup_scenario",
    "install_result",
    "clear_cache",
    "cache_stats",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "paper_limited",
    "SCENARIOS",
    "ResultStore",
    "current_result_store",
    "result_store_session",
    "result_to_dict",
    "result_from_dict",
]
