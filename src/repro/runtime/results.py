"""Result types shared by every mining driver on the cluster runtime.

One run produces a :class:`RunResult` — the mined large itemsets plus a
:class:`PassResult` per Apriori pass.  The mined itemsets (with exact
support counts) are invariant under every pager/limit configuration;
only the virtual clock and the pagefault/message statistics differ.
That invariance is what the integration tests pin against sequential
Apriori, and what the golden-value runtime-equivalence test pins across
refactors.

The historical names ``HPAPassResult`` / ``HPAResult`` remain importable
from :mod:`repro.mining.hpa` as aliases.

Every field here is simulated state: results are pure functions of the
configuration, which is what lets the
:class:`~repro.runtime.store.ResultStore` address them by content.  Host
wall-clock is measured outside the drivers entirely, by subscribing a
:class:`~repro.harness.wallclock.PhaseWallClock` to the telemetry bus —
it must never appear in these dataclasses (``repro-lint`` RPL101 guards
the drivers themselves).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.runtime.config import RunConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mining.itemsets import Itemset

__all__ = ["PassResult", "RunResult"]


@dataclass
class PassResult:
    """Per-pass outcome and timing (one row of Table 2 plus phase times)."""

    k: int
    n_candidates: int
    per_node_candidates: list[int]
    n_large: int
    start_time: float
    end_time: float
    candgen_time_s: float = 0.0
    counting_time_s: float = 0.0
    determine_time_s: float = 0.0
    faults_per_node: list[int] = field(default_factory=list)
    swap_outs_per_node: list[int] = field(default_factory=list)
    update_msgs_per_node: list[int] = field(default_factory=list)
    fault_time_per_node: list[float] = field(default_factory=list)
    n_duplicated: int = 0
    count_messages: int = 0

    @property
    def duration_s(self) -> float:
        """Total virtual time of this pass."""
        return self.end_time - self.start_time

    @property
    def max_faults(self) -> int:
        """Pagefaults at the busiest node (Table 4's ``Max`` column)."""
        return max(self.faults_per_node, default=0)


@dataclass
class RunResult:
    """Outcome of a full mining run on the simulated cluster."""

    config: RunConfig
    large_itemsets: "dict[Itemset, int]"
    passes: list[PassResult]
    total_time_s: float

    def pass_result(self, k: int) -> PassResult:
        """The result row for pass ``k``."""
        for p in self.passes:
            if p.k == k:
                return p
        raise KeyError(f"no pass {k} in this run")

    def table2_rows(self) -> list[tuple[int, Optional[int], int]]:
        """(pass, C_k, L_k) rows in the paper's Table 2 format."""
        return [
            (p.k, None if p.k == 1 else p.n_candidates, p.n_large)
            for p in self.passes
        ]

    def summary(self) -> str:
        """Multi-line human-readable run summary."""
        cfg = self.config
        lines = [
            f"HPA run: {cfg.n_app_nodes} app nodes, "
            f"{cfg.n_memory_nodes} memory nodes, pager={cfg.pager}, "
            f"limit={cfg.memory_limit_bytes or 'none'}",
            f"large itemsets: {len(self.large_itemsets)}; "
            f"total virtual time: {self.total_time_s:.3f}s",
        ]
        for p in self.passes:
            extra = ""
            if p.k >= 2:
                extra = (
                    f"  [{p.duration_s:.3f}s"
                    f", faults<=n:{p.max_faults}"
                    f", swaps<=n:{max(p.swap_outs_per_node, default=0)}"
                    f", msgs:{p.count_messages}]"
                )
            cand = "-" if p.k == 1 else str(p.n_candidates)
            lines.append(f"  pass {p.k}: C={cand} L={p.n_large}{extra}")
        return "\n".join(lines)
