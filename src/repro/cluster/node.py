"""A simulated cluster node: CPU, memory ledger, disks, NIC attachment.

The CPU is a single exclusive resource (Pentium Pro, one core); processes
charge work to it through :meth:`Node.compute`, which queues behind other
computation on the same node — this is what makes a memory-available
node's *service time* a contended quantity, one of the two ingredients of
Figure 3's bottleneck (the other being its ingress NIC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.cluster.disk import Disk
from repro.cluster.memory import MemoryLedger
from repro.cluster.network import Network
from repro.cluster.specs import NodeSpec, PAPER_NODE
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment

__all__ = ["Node", "NodeStats"]


@dataclass
class NodeStats:
    """Per-node accumulated counters."""

    cpu_busy_s: float = 0.0
    compute_calls: int = 0


class Node:
    """One PC of the cluster."""

    def __init__(
        self,
        env: "Environment",
        node_id: int,
        network: Network,
        spec: NodeSpec = PAPER_NODE,
    ) -> None:
        self.env = env
        self.node_id = int(node_id)
        self.spec = spec
        self.memory = MemoryLedger(spec.memory_bytes)
        self.cpu = Resource(env, capacity=1)
        #: The swap target disk (SCSI in the paper's disk-swapping baseline).
        self.swap_disk = Disk(env, spec.disk)
        #: The IDE data disk holding the transaction file.
        self.data_disk = Disk(env, spec.disk)
        self.stats = NodeStats()
        network.register(self.node_id)
        self.network = network

    def compute(self, seconds: float) -> Generator:
        """Process generator: occupy this node's CPU for ``seconds``.

        Scaled by the CPU's speed factor so the same logical work costs
        less on a faster catalogue CPU.
        """
        if seconds < 0:
            raise ValueError(f"negative compute time {seconds}")
        scaled = seconds / self.spec.cpu.speed_factor
        with self.cpu.request() as grant:
            yield grant
            yield self.env.sleep(scaled)
        self.stats.cpu_busy_s += scaled
        self.stats.compute_calls += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.node_id} mem={self.memory.used_bytes}/{self.memory.capacity_bytes}>"
