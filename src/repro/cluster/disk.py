"""Queued disk model.

One :class:`Disk` serves requests strictly one at a time (single arm).
Random requests pay average seek + rotational latency + transfer; callers
flag sequential streams to skip positioning costs, matching how the paper
costs disk behaviour in §5.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.errors import DiskError
from repro.cluster.specs import DiskSpec
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment

__all__ = ["Disk", "DiskStats"]


@dataclass
class DiskStats:
    """Counters accumulated over a disk's lifetime."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_time_s: float = 0.0

    def total_ios(self) -> int:
        """Total number of completed requests."""
        return self.reads + self.writes


class Disk:
    """A single simulated disk with an exclusive request queue."""

    def __init__(self, env: "Environment", spec: DiskSpec) -> None:
        self.env = env
        self.spec = spec
        self._arm = Resource(env, capacity=1)
        self.stats = DiskStats()

    def read(self, size_bytes: int, sequential: bool = False) -> Generator:
        """Process generator performing one read request."""
        return self._io(size_bytes, write=False, sequential=sequential)

    def write(self, size_bytes: int, sequential: bool = False) -> Generator:
        """Process generator performing one write request."""
        return self._io(size_bytes, write=True, sequential=sequential)

    def _io(self, size_bytes: int, write: bool, sequential: bool) -> Generator:
        if size_bytes <= 0:
            raise DiskError(f"I/O size must be positive, got {size_bytes}")
        service = self.spec.access_time_s(size_bytes, sequential=sequential)
        with self._arm.request() as grant:
            yield grant
            yield self.env.sleep(service)
        self.stats.busy_time_s += service
        if write:
            self.stats.writes += 1
            self.stats.bytes_written += size_bytes
        else:
            self.stats.reads += 1
            self.stats.bytes_read += size_bytes

    @property
    def queue_length(self) -> int:
        """Number of requests waiting behind the arm."""
        return len(self._arm.queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Disk {self.spec.name!r} ios={self.stats.total_ios()}>"
