"""Per-node memory accounting.

The paper's mechanism is *application level*: what matters is how many
bytes of candidate itemsets (and of guest swap data) each node currently
holds, and how much of the node's physical memory other workloads are
using.  :class:`MemoryLedger` tracks exactly that, with an
``external_pressure`` knob used by the migration experiments to pretend a
new process has claimed the machine's memory (paper §5.4's signal).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.analysis.race import access as _race
from repro.errors import MemoryLedgerError

__all__ = ["MemoryLedger"]


class MemoryLedger:
    """Byte-granular allocate/free ledger with an availability view.

    ``available`` is what a monitor process would report: capacity minus
    everything allocated minus memory claimed by unrelated local
    processes (``external_pressure``).
    """

    #: Mutated by guest placements, local frees, and churn traces —
    #: multiple simulation processes per node (see repro.analysis.race).
    __race_shared__ = True

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise MemoryLedgerError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self._used = 0
        self._external = 0
        #: Optional hook invoked after every state change (monitors use it).
        self.on_change: Optional[Callable[["MemoryLedger"], None]] = None
        self._race = _race.TRACKER

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated through this ledger."""
        return self._used

    @property
    def external_pressure_bytes(self) -> int:
        """Bytes claimed by simulated unrelated processes on the node."""
        return self._external

    @property
    def available_bytes(self) -> int:
        """Bytes a guest could still claim (never negative)."""
        if self._race is not None:
            self._race.read(self, "bytes")
        return max(0, self.capacity_bytes - self._used - self._external)

    def allocate(self, nbytes: int) -> None:
        """Claim ``nbytes``; raises if the node would be over-committed."""
        if nbytes < 0:
            raise MemoryLedgerError(f"cannot allocate negative bytes ({nbytes})")
        if self._used + nbytes > self.capacity_bytes:
            raise MemoryLedgerError(
                f"allocation of {nbytes} B exceeds capacity "
                f"({self._used}/{self.capacity_bytes} B used)"
            )
        if self._race is not None:
            self._race.write(self, "bytes")
        self._used += nbytes
        self._notify()

    def free(self, nbytes: int) -> None:
        """Return ``nbytes``; raises if more is freed than was allocated."""
        if nbytes < 0:
            raise MemoryLedgerError(f"cannot free negative bytes ({nbytes})")
        if nbytes > self._used:
            raise MemoryLedgerError(
                f"freeing {nbytes} B but only {self._used} B are allocated"
            )
        if self._race is not None:
            self._race.write(self, "bytes")
        self._used -= nbytes
        self._notify()

    def set_external_pressure(self, nbytes: int) -> None:
        """Simulate unrelated processes claiming ``nbytes`` of the node.

        Used by the migration experiments: a memory-available node that
        "pretends to have no available memory anymore" simply gets
        pressure equal to its capacity.
        """
        if nbytes < 0:
            raise MemoryLedgerError(f"external pressure cannot be negative ({nbytes})")
        if self._race is not None:
            self._race.write(self, "bytes")
        self._external = int(nbytes)
        self._notify()

    def _notify(self) -> None:
        if self.on_change is not None:
            self.on_change(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MemoryLedger used={self._used}/{self.capacity_bytes} "
            f"external={self._external}>"
        )
