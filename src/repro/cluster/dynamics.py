"""Background-load dynamics for memory-available nodes.

The paper's premise is that remote memory *fluctuates*: other workloads
on the lender PCs grow and shrink, and occasionally a node stops lending
altogether (§4.2's shortage + migration story).  Historically the repro
exercised that only through scripted one-shot shortages injected by the
harness.  This module makes availability dynamics a first-class,
pluggable subsystem:

* :func:`parse_trace` turns a compact string spec
  (``"sawtooth:period=0.04,low=0.1,high=0.9"``) into a
  :class:`LoadTrace` — a deterministic, seeded generator of
  ``(hold_s, fraction)`` steps describing how much of a node's memory
  unrelated local processes claim over simulated time.
* :class:`NodeDynamics` runs one trace against one node's
  :class:`~repro.cluster.memory.MemoryLedger` through its
  :class:`~repro.core.monitor.MemoryMonitor`, so the periodic broadcasts
  carry the fluctuating truth and the shortage flag *falls out of the
  trace* (a step at 100 % of capacity signals shortage exactly like the
  paper's "another process claimed the machine"; dropping below clears
  it).
* :class:`ClusterDynamics` owns the per-node trace processes plus
  mid-pass :class:`FailureEvent` node failures with recovery.
* :func:`scripted_shortage` is the degenerate trace: a single step to
  100 % at a fixed time, event-for-event identical to the historical
  harness-side injector, so every scripted-shortage golden stays
  bit-identical.

Every trace is a pure function of ``(spec, seed, node index)`` — the
bursty trace draws its gaps from a seeded ``numpy`` generator — so runs
remain reproducible and store-cacheable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Iterator, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, Interrupt, MiningError
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.monitor import MemoryMonitor
    from repro.obs.events import EventBus
    from repro.sim.engine import Environment

__all__ = [
    "TRACE_KINDS",
    "LoadTrace",
    "ConstantTrace",
    "SawtoothTrace",
    "BurstyTrace",
    "ReplayTrace",
    "parse_trace",
    "FailureEvent",
    "NodeDynamics",
    "ClusterDynamics",
    "scripted_shortage",
]

#: Trace kinds :func:`parse_trace` understands (``"none"`` means no trace).
TRACE_KINDS = ("none", "constant", "sawtooth", "bursty", "replay")

#: One trace step: hold ``fraction`` of capacity as external pressure for
#: ``hold_s`` simulated seconds (``None`` = forever; the trace ends).
Step = Tuple[Optional[float], float]


class LoadTrace:
    """A deterministic background-load profile for one memory node.

    Subclasses yield :data:`Step` tuples from :meth:`steps`; the
    ``fraction`` of each step is clamped to ``[0, 1]`` at application
    time, so a trace can never drive a ledger negative or past capacity
    (property-tested in ``tests/cluster/test_dynamics.py``).
    """

    kind: str = "abstract"

    def steps(self, rng: np.random.Generator) -> Iterator[Step]:
        """Yield ``(hold_s, fraction)`` steps; ``rng`` is this node's
        seeded generator (only the bursty trace draws from it)."""
        raise NotImplementedError

    def spec(self) -> str:
        """The canonical string spec this trace round-trips to."""
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantTrace(LoadTrace):
    """A fixed background load: one step, held forever."""

    fraction: float = 0.0
    kind: str = "constant"

    def steps(self, rng: np.random.Generator) -> Iterator[Step]:
        yield (None, self.fraction)

    def spec(self) -> str:
        return f"constant:frac={self.fraction:g}"


@dataclass(frozen=True)
class SawtoothTrace(LoadTrace):
    """Load ramps ``low -> high`` over one period, then drops back.

    The ramp is discretised into ``n_steps`` equal holds so the monitor
    broadcasts see a staircase — the classic diurnal-ish profile the
    predictive policies are built to track.

    With ``stagger`` set, each node starts its staircase after a random
    phase offset in ``[0, period)`` drawn from the node's seeded
    generator — decorrelated reclaims, like independent machine owners.
    Without it every node moves in lockstep, so a ``high`` of 1 would
    reclaim the whole cluster at once.
    """

    period_s: float = 0.05
    low: float = 0.0
    high: float = 0.9
    n_steps: int = 8
    stagger: bool = False
    kind: str = "sawtooth"

    def steps(self, rng: np.random.Generator) -> Iterator[Step]:
        hold = self.period_s / self.n_steps
        if self.stagger:
            yield (float(rng.uniform(0.0, self.period_s)), self.low)
        while True:
            for i in range(self.n_steps):
                frac = self.low + (self.high - self.low) * i / (self.n_steps - 1)
                yield (hold, frac)

    def spec(self) -> str:
        return (
            f"sawtooth:period={self.period_s:g},low={self.low:g},"
            f"high={self.high:g},steps={self.n_steps}"
            + (",stagger=1" if self.stagger else "")
        )


@dataclass(frozen=True)
class BurstyTrace(LoadTrace):
    """Idle baseline punctuated by short full-pressure bursts.

    Gaps between bursts are exponential with mean ``gap_s`` drawn from
    the node's seeded generator; each burst holds ``frac`` for
    ``hold_s``.  Deterministic for a fixed ``(seed, node index)``.
    """

    gap_s: float = 0.03
    hold_s: float = 0.01
    frac: float = 0.9
    base: float = 0.0
    kind: str = "bursty"

    def steps(self, rng: np.random.Generator) -> Iterator[Step]:
        while True:
            yield (float(rng.exponential(self.gap_s)), self.base)
            yield (self.hold_s, self.frac)

    def spec(self) -> str:
        return (
            f"bursty:gap={self.gap_s:g},hold={self.hold_s:g},"
            f"frac={self.frac:g},base={self.base:g}"
        )


@dataclass(frozen=True)
class ReplayTrace(LoadTrace):
    """Replay an explicit ``time=fraction`` schedule (absolute times).

    The last level is held forever — a one-point replay at 100 % is
    exactly the degenerate scripted-shortage trace.
    """

    points: Tuple[Tuple[float, float], ...] = ()
    kind: str = "replay"

    def steps(self, rng: np.random.Generator) -> Iterator[Step]:
        now = 0.0
        level = 0.0
        for at, frac in self.points:
            if at > now:
                yield (at - now, level)
                now = at
            level = frac
        yield (None, level)

    def spec(self) -> str:
        body = ";".join(f"{t:g}={f:g}" for t, f in self.points)
        return f"replay:{body}"


def _parse_kv(body: str, spec: str) -> "dict[str, float]":
    out: "dict[str, float]" = {}
    for part in body.split(","):
        if not part:
            continue
        key, sep, val = part.partition("=")
        if not sep:
            raise ConfigError(f"bad trace parameter {part!r} in {spec!r}")
        try:
            out[key.strip()] = float(val)
        except ValueError:
            raise ConfigError(
                f"bad trace parameter value {val!r} in {spec!r}"
            ) from None
    return out


def _check_fraction(name: str, value: float, spec: str) -> float:
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must be in [0, 1] in trace {spec!r}, got {value}")
    return value


def parse_trace(spec: str) -> "Optional[LoadTrace]":
    """Parse a churn spec string; ``"none"`` returns ``None``.

    Grammar: ``kind`` or ``kind:key=val,key=val`` (``replay`` uses
    ``;``-separated ``time=fraction`` pairs).  Raises
    :class:`~repro.errors.ConfigError` on anything malformed, so
    :func:`repro.runtime.config.validate_config` rejects bad specs at
    construction time.
    """
    if not isinstance(spec, str) or not spec:
        raise ConfigError(f"churn trace spec must be a non-empty string, got {spec!r}")
    kind, _, body = spec.partition(":")
    if kind == "none":
        if body:
            raise ConfigError(f"trace kind 'none' takes no parameters: {spec!r}")
        return None
    if kind == "constant":
        kv = _parse_kv(body, spec)
        unknown = set(kv) - {"frac"}
        if unknown:
            raise ConfigError(f"unknown constant-trace keys {sorted(unknown)}")
        return ConstantTrace(
            fraction=_check_fraction("frac", kv.get("frac", 0.0), spec)
        )
    if kind == "sawtooth":
        kv = _parse_kv(body, spec)
        unknown = set(kv) - {"period", "low", "high", "steps", "stagger"}
        if unknown:
            raise ConfigError(f"unknown sawtooth-trace keys {sorted(unknown)}")
        period = kv.get("period", 0.05)
        if period <= 0:
            raise ConfigError(f"sawtooth period must be positive in {spec!r}")
        n_steps = int(kv.get("steps", 8))
        if n_steps < 2:
            raise ConfigError(f"sawtooth needs >= 2 steps in {spec!r}")
        low = _check_fraction("low", kv.get("low", 0.0), spec)
        high = _check_fraction("high", kv.get("high", 0.9), spec)
        if high < low:
            raise ConfigError(f"sawtooth high < low in {spec!r}")
        return SawtoothTrace(
            period_s=period, low=low, high=high, n_steps=n_steps,
            stagger=bool(kv.get("stagger", 0.0)),
        )
    if kind == "bursty":
        kv = _parse_kv(body, spec)
        unknown = set(kv) - {"gap", "hold", "frac", "base"}
        if unknown:
            raise ConfigError(f"unknown bursty-trace keys {sorted(unknown)}")
        gap = kv.get("gap", 0.03)
        hold = kv.get("hold", 0.01)
        if gap <= 0 or hold <= 0:
            raise ConfigError(f"bursty gap/hold must be positive in {spec!r}")
        return BurstyTrace(
            gap_s=gap,
            hold_s=hold,
            frac=_check_fraction("frac", kv.get("frac", 0.9), spec),
            base=_check_fraction("base", kv.get("base", 0.0), spec),
        )
    if kind == "replay":
        points: "list[tuple[float, float]]" = []
        prev = -1.0
        for pair in body.split(";"):
            if not pair:
                continue
            t_str, sep, f_str = pair.partition("=")
            if not sep:
                raise ConfigError(f"bad replay point {pair!r} in {spec!r}")
            try:
                at, frac = float(t_str), float(f_str)
            except ValueError:
                raise ConfigError(f"bad replay point {pair!r} in {spec!r}") from None
            if at < 0 or at <= prev:
                raise ConfigError(
                    f"replay times must be non-negative and increasing: {spec!r}"
                )
            prev = at
            points.append((at, _check_fraction("fraction", frac, spec)))
        if not points:
            raise ConfigError(f"replay trace needs at least one point: {spec!r}")
        return ReplayTrace(points=tuple(points))
    raise ConfigError(f"unknown trace kind {kind!r}; have {TRACE_KINDS}")


@dataclass(frozen=True)
class FailureEvent:
    """One mid-pass node failure: at ``at_s`` the node stops lending
    (shortage signal -> guests migrate off), and ``down_s`` later it
    recovers and resumes advertising its memory."""

    at_s: float
    node_index: int
    down_s: float


class NodeDynamics:
    """One background-load trace driving one memory node's ledger."""

    def __init__(
        self,
        monitor: "MemoryMonitor",
        trace: LoadTrace,
        rng: np.random.Generator,
    ) -> None:
        self.monitor = monitor
        self.trace = trace
        self.rng = rng
        self._proc: Optional[Process] = None
        #: Telemetry event bus (wired through :class:`ClusterDynamics`).
        self.bus: "Optional[EventBus]" = None

    def start(self) -> Process:
        self._proc = self.monitor.node.env.process(self._run())
        return self._proc

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")

    def apply_fraction(self, fraction: float) -> int:
        """Set the node's external pressure to ``fraction`` of capacity.

        The fraction is clamped to ``[0, 1]`` so the ledger can never go
        negative or past capacity.  A full-pressure step signals
        shortage through the monitor (immediate broadcast, migration
        trigger); any lower step clears a standing shortage first.
        Returns the applied level in bytes.
        """
        # repro-race: ordered -- a monitor broadcast racing a churn step
        # samples either the pre- or post-step availability; both are
        # valid snapshots of a fluctuating quantity and the next
        # broadcast refreshes every client's view either way.
        monitor = self.monitor
        memory = monitor.node.memory
        frac = min(1.0, max(0.0, fraction))
        level = min(memory.capacity_bytes, int(round(frac * memory.capacity_bytes)))
        if self.bus is not None:
            self.bus.emit(
                "churn-level", monitor.node.node_id,
                f"background load {level} B ({self.trace.kind})",
                level_bytes=level, trace=self.trace.kind,
            )
        if level >= memory.capacity_bytes:
            if not monitor.shortage:
                monitor.signal_shortage()
        else:
            if monitor.shortage:
                monitor.clear_shortage()
            memory.set_external_pressure(level)
        return level

    def _run(self) -> Generator:
        env = self.monitor.node.env
        for hold_s, fraction in self.trace.steps(self.rng):
            self.apply_fraction(fraction)
            if hold_s is None:
                return
            try:
                yield env.timeout(hold_s)
            except Interrupt:
                return


class ClusterDynamics:
    """The availability-dynamics subsystem of one cluster runtime.

    Owns a :class:`NodeDynamics` per memory node (when ``churn`` is not
    ``"none"``) and a process per :class:`FailureEvent`.  With the
    default ``churn="none"`` and no failures it creates **no** simulation
    processes at all, so runs without dynamics stay event-for-event
    identical to the pre-dynamics runtime.
    """

    def __init__(
        self,
        env: "Environment",
        monitors: "dict[int, MemoryMonitor]",
        mem_ids: "list[int]",
        churn: str = "none",
        failures: "tuple[FailureEvent, ...]" = (),
        seed: int = 0,
    ) -> None:
        self.env = env
        self.monitors = monitors
        self.mem_ids = list(mem_ids)
        self.churn = churn
        self.failures = tuple(failures)
        self.seed = seed
        #: Telemetry event bus (wired by ``Telemetry.attach``).
        self.bus: "Optional[EventBus]" = None
        trace = parse_trace(churn)
        #: Per-memory-node trace drivers, in ``mem_ids`` order.  Each
        #: node gets an independent generator seeded from ``(seed,
        #: node_id)`` so bursty traces decorrelate across nodes while
        #: staying reproducible.
        self.node_dynamics: "list[NodeDynamics]" = []
        if trace is not None:
            for node_id in self.mem_ids:
                self.node_dynamics.append(
                    NodeDynamics(
                        monitors[node_id],
                        trace,
                        np.random.default_rng((seed, node_id)),
                    )
                )
        self._procs: "list[Process]" = []

    @property
    def active(self) -> bool:
        """Whether this runtime has any dynamics at all."""
        return bool(self.node_dynamics) or bool(self.failures)

    def start(self) -> None:
        """Launch trace and failure processes (no-op when inactive)."""
        for nd in self.node_dynamics:
            nd.bus = self.bus
            self._procs.append(nd.start())
        for failure in self.failures:
            self._procs.append(self.env.process(self._failure(failure)))

    def stop(self) -> None:
        """Terminate every dynamics process still running."""
        for nd in self.node_dynamics:
            nd.stop()
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt("stop")
        self._procs.clear()

    def _failure(self, failure: FailureEvent) -> Generator:
        env = self.env
        try:
            yield env.timeout(failure.at_s)
        except Interrupt:
            return
        if not 0 <= failure.node_index < len(self.mem_ids):
            raise MiningError(
                f"failure node index {failure.node_index} out of range "
                f"(have {len(self.mem_ids)} memory nodes)"
            )
        node_id = self.mem_ids[failure.node_index]
        monitor = self.monitors[node_id]
        if self.bus is not None:
            self.bus.emit(
                "node-fail", node_id,
                f"node {node_id} down for {failure.down_s:g}s",
                down_s=failure.down_s,
            )
        monitor.signal_shortage()
        try:
            yield env.timeout(failure.down_s)
        except Interrupt:
            return
        # clear_shortage emits the "node-recover" event and broadcasts
        # the recovery immediately.
        monitor.clear_shortage()


def scripted_shortage(
    env: "Environment", monitors: "dict[int, MemoryMonitor]", at: float, node_id: int
) -> Generator:
    """The degenerate trace: one step to 100 % pressure at time ``at``.

    This is the paper §5.4 experiment signal — and, deliberately, the
    *exact* event sequence of the historical harness-side shortage
    injector (one timeout, then ``signal_shortage``), so the 12-config
    runtime goldens and the report baselines stay bit-identical.
    """
    yield env.timeout(at)
    if node_id not in monitors:
        raise MiningError(f"node {node_id} is not a memory-available node")
    monitors[node_id].signal_shortage()
