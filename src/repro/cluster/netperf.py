"""Micro-benchmarks of the simulated cluster (a tiny netperf).

These measure the *simulation's* primitive characteristics — round-trip
time, streaming throughput, fan-in serialisation, disk access times —
the same quantities the paper reports for the real cluster (§5.2), so
calibration can be validated automatically
(:mod:`repro.analysis.calibration`) rather than trusted.
"""

from __future__ import annotations


from repro.cluster import Cluster
from repro.cluster.specs import DiskSpec, NodeSpec, PAPER_NODE
from repro.sim import Environment

__all__ = [
    "measure_rtt_s",
    "measure_throughput_bps",
    "measure_fan_in_factor",
    "measure_disk_access_s",
]


def measure_rtt_s(payload_bytes: int = 64, spec: NodeSpec = PAPER_NODE) -> float:
    """Round-trip time of a small message between two idle nodes."""
    env = Environment()
    cluster = Cluster(env, 2, spec=spec)
    result: list[float] = []

    def proc(env):
        start = env.now
        yield from cluster.transport.send(0, 1, "rtt", None, payload_bytes)
        yield from cluster.transport.send(1, 0, "rtt", None, payload_bytes)
        result.append(env.now - start)

    env.process(proc(env))
    env.run()
    return result[0]


def measure_throughput_bps(
    n_messages: int = 200,
    message_bytes: int = 65536,
    spec: NodeSpec = PAPER_NODE,
) -> float:
    """Effective point-to-point streaming throughput (payload bits/s)."""
    env = Environment()
    cluster = Cluster(env, 2, spec=spec)

    def proc(env):
        for _ in range(n_messages):
            yield from cluster.transport.send(0, 1, "bulk", None, message_bytes)

    p = env.process(proc(env))
    env.run(until=p)
    return n_messages * message_bytes * 8 / env.now


def measure_fan_in_factor(
    n_senders: int = 8,
    n_messages: int = 50,
    message_bytes: int = 4096,
    spec: NodeSpec = PAPER_NODE,
) -> float:
    """How much longer ``n_senders``-into-1 takes than a single pair.

    A value near ``n_senders`` demonstrates ingress-NIC serialisation —
    the mechanism behind Figure 3's bottleneck.
    """
    def run(senders: int) -> float:
        env = Environment()
        cluster = Cluster(env, senders + 1, spec=spec)
        dst = senders

        def one(env, src):
            # Pipelined (TCP-like) stream: the sender does not stall on
            # per-message delivery latency, so the wire stays saturated
            # and ingress serialisation is the only limiter.
            posted = [
                cluster.transport.post(src, dst, "fan", None, message_bytes)
                for _ in range(n_messages)
            ]
            yield env.all_of(posted)

        for src in range(senders):
            env.process(one(env, src))
        env.run()
        return env.now

    return run(n_senders) / run(1)


def measure_disk_access_s(
    spec: DiskSpec,
    io_bytes: int = 4096,
    sequential: bool = False,
    samples: int = 16,
) -> float:
    """Mean access time of one I/O on an idle simulated disk."""
    from repro.cluster.disk import Disk

    env = Environment()
    disk = Disk(env, spec)

    def proc(env):
        for _ in range(samples):
            yield from disk.read(io_bytes, sequential=sequential)

    env.process(proc(env))
    env.run()
    return env.now / samples
