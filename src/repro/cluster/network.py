"""Star-topology ATM network model.

All nodes hang off one non-blocking crossbar switch (the paper's HITACHI
AN1000-20 has a port for every node), so the only shared resources are
the per-node NIC transmit and receive sides.  A message transfer:

1. waits for the sender's egress NIC,
2. waits for the receiver's ingress NIC (this is where a single
   memory-available node serving eight application nodes becomes the
   bottleneck of Figure 3),
3. holds both for the transmit time of payload + protocol overhead,
4. is delivered one one-way latency later.

Bandwidth and latency come from :class:`~repro.cluster.specs.NicSpec`;
defaults reproduce the paper's measured 120 Mbps / 0.5 ms RTT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.errors import NetworkError
from repro.cluster.specs import ATM_155, NicSpec
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment

__all__ = ["Message", "Network", "NetworkStats", "PROTOCOL_OVERHEAD_BYTES"]

#: Per-message header cost: TCP/IP + LLC/SNAP encapsulation over AAL5
#: (RFC 1483), rounded to a convenient constant.
PROTOCOL_OVERHEAD_BYTES = 96


@dataclass
class Message:
    """One network message, as seen by the transport layer."""

    src: int
    dst: int
    channel: str
    payload: object
    size_bytes: int
    msg_id: int = -1
    send_time: float = -1.0
    deliver_time: float = -1.0


# Pure counter accumulation: every field is a sum of per-message
# increments, which commute within an epoch; no control flow reads them
# back during the run.
@dataclass
class NetworkStats:  # repro-lint: disable=RPL602
    """Aggregate network counters."""

    messages: int = 0
    payload_bytes: int = 0
    wire_bytes: int = 0
    retransmissions: int = 0
    per_node_sent: dict = field(default_factory=dict)
    per_node_received: dict = field(default_factory=dict)

    def record(self, msg: Message, wire_bytes: int) -> None:
        """Account one delivered message."""
        self.messages += 1
        self.payload_bytes += msg.size_bytes
        self.wire_bytes += wire_bytes
        self.per_node_sent[msg.src] = self.per_node_sent.get(msg.src, 0) + 1
        self.per_node_received[msg.dst] = self.per_node_received.get(msg.dst, 0) + 1


class Network:
    """The switch plus every registered node's NIC resources.

    The cluster runs TCP over ATM's UBR traffic class (§3.2), which
    drops cells under congestion; the authors' companion study analysed
    the resulting TCP retransmissions on this very hardware.  Setting
    ``loss_probability`` models that regime: each transmission attempt
    is independently lost with that probability and retried after
    ``retransmission_timeout_s`` (TCP's RTO), which is what makes loss
    so much more expensive than its raw frequency suggests.
    """

    def __init__(
        self,
        env: "Environment",
        nic: NicSpec = ATM_155,
        loss_probability: float = 0.0,
        retransmission_timeout_s: float = 0.2,
        loss_seed: int = 0,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise NetworkError(
                f"loss probability must be in [0, 1), got {loss_probability}"
            )
        if retransmission_timeout_s <= 0:
            raise NetworkError("retransmission timeout must be positive")
        self.env = env
        self.nic = nic
        self.loss_probability = loss_probability
        self.retransmission_timeout_s = retransmission_timeout_s
        self._loss_rng = np.random.default_rng(loss_seed)
        self._egress: dict[int, Resource] = {}
        self._ingress: dict[int, Resource] = {}
        self._msg_ids = count()
        self.stats = NetworkStats()
        #: Telemetry event bus (wired by ``Telemetry.attach``); emits one
        #: ``net-msg`` per delivery and one ``net-retransmit`` per loss.
        self.bus = None

    def register(self, node_id: int) -> None:
        """Attach a node to the switch; idempotent."""
        if node_id not in self._egress:
            self._egress[node_id] = Resource(self.env, capacity=1)
            self._ingress[node_id] = Resource(self.env, capacity=1)

    @property
    def node_ids(self) -> list[int]:
        """All registered nodes, in registration order."""
        return list(self._egress)

    def transfer(self, msg: Message) -> Generator:
        """Process generator moving ``msg`` across the network.

        Completes at the instant the message is fully delivered; the
        yielded value is the message with timing fields filled in.
        """
        if msg.src not in self._egress:
            raise NetworkError(f"unknown source node {msg.src}")
        if msg.dst not in self._ingress:
            raise NetworkError(f"unknown destination node {msg.dst}")
        if msg.src == msg.dst:
            raise NetworkError(f"node {msg.src} cannot send to itself over the network")
        if msg.size_bytes < 0:
            raise NetworkError(f"negative message size {msg.size_bytes}")

        msg.msg_id = next(self._msg_ids)
        msg.send_time = self.env.now

        wire_bytes = msg.size_bytes + PROTOCOL_OVERHEAD_BYTES
        tx_time = self.nic.transmit_time_s(wire_bytes)

        while True:
            egress = self._egress[msg.src].request()
            yield egress
            ingress = self._ingress[msg.dst].request()
            yield ingress
            try:
                yield self.env.sleep(tx_time)
            finally:
                self._egress[msg.src].release(egress)
                self._ingress[msg.dst].release(ingress)
            if (
                self.loss_probability > 0.0
                and self._loss_rng.random() < self.loss_probability
            ):
                # Segment lost (UBR cell drop): TCP retransmits after RTO.
                self.stats.retransmissions += 1
                if self.bus is not None:
                    self.bus.emit(
                        "net-retransmit", msg.src,
                        f"msg {msg.msg_id} -> node {msg.dst} lost on {msg.channel}",
                        dst=msg.dst, channel=msg.channel,
                    )
                yield self.env.timeout(self.retransmission_timeout_s)
                continue
            break

        yield self.env.sleep(self.nic.one_way_latency_s)
        msg.deliver_time = self.env.now
        self.stats.record(msg, wire_bytes)
        if self.bus is not None:
            self.bus.emit(
                "net-msg", msg.src,
                f"msg {msg.msg_id} -> node {msg.dst} on {msg.channel}",
                dst=msg.dst, channel=msg.channel, size_bytes=msg.size_bytes,
                wire_bytes=wire_bytes,
                duration_s=msg.deliver_time - msg.send_time,
            )
        return msg

    def egress_queue_length(self, node_id: int) -> int:
        """Sends waiting on ``node_id``'s transmit side."""
        return len(self._egress[node_id].queue)

    def ingress_queue_length(self, node_id: int) -> int:
        """Deliveries waiting on ``node_id``'s receive side."""
        return len(self._ingress[node_id].queue)
