"""Simulated ATM-connected PC cluster substrate.

Provides :class:`Cluster`, a convenience bundle wiring N :class:`Node`
objects onto one :class:`Network` with a shared :class:`Transport`, plus
the hardware catalogue matching the paper's Table 1.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.cluster.disk import Disk, DiskStats
from repro.cluster.dynamics import (
    ClusterDynamics,
    FailureEvent,
    LoadTrace,
    NodeDynamics,
    parse_trace,
    scripted_shortage,
)
from repro.cluster.memory import MemoryLedger
from repro.cluster.network import PROTOCOL_OVERHEAD_BYTES, Message, Network, NetworkStats
from repro.cluster.node import Node, NodeStats
from repro.cluster.specs import (
    ATM_155,
    BARRACUDA_7200,
    CAVIAR_IDE,
    DK3E1T_12000,
    ETHERNET_10,
    KB,
    MB,
    PAPER_NODE,
    PENTIUM_III_800,
    PENTIUM_PRO_200,
    CpuSpec,
    DiskSpec,
    NicSpec,
    NodeSpec,
)
from repro.cluster.transport import Mailbox, Transport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment

__all__ = [
    "Cluster",
    "ClusterDynamics",
    "NodeDynamics",
    "LoadTrace",
    "FailureEvent",
    "parse_trace",
    "scripted_shortage",
    "Node",
    "NodeStats",
    "Network",
    "NetworkStats",
    "Message",
    "Transport",
    "Mailbox",
    "Disk",
    "DiskStats",
    "MemoryLedger",
    "CpuSpec",
    "DiskSpec",
    "NicSpec",
    "NodeSpec",
    "PENTIUM_PRO_200",
    "PENTIUM_III_800",
    "BARRACUDA_7200",
    "DK3E1T_12000",
    "CAVIAR_IDE",
    "ATM_155",
    "ETHERNET_10",
    "PAPER_NODE",
    "PROTOCOL_OVERHEAD_BYTES",
    "KB",
    "MB",
]


class Cluster:
    """``n_nodes`` nodes on one ATM switch.

    Node ids run 0..n-1.  The first ``n_app`` ids are conventionally the
    application execution nodes; the experiment harness assigns the rest
    as memory-available nodes.  All nodes share ``spec`` unless
    ``specs`` provides a per-node hardware description (heterogeneous
    clusters: mixed memory sizes, disk generations, CPU speeds); the
    switch NIC model always comes from ``spec``.
    """

    def __init__(
        self,
        env: "Environment",
        n_nodes: int,
        spec: NodeSpec = PAPER_NODE,
        mailbox_capacity: "int | None" = None,
        specs: "Optional[Sequence[NodeSpec]]" = None,
    ) -> None:
        if n_nodes <= 0:
            raise ValueError(f"cluster needs at least one node, got {n_nodes}")
        if specs is not None and len(specs) != n_nodes:
            raise ValueError(
                f"need one spec per node: got {len(specs)} for {n_nodes} nodes"
            )
        self.env = env
        self.network = Network(env, nic=spec.nic)
        per_node = list(specs) if specs is not None else [spec] * n_nodes
        self.nodes = [
            Node(env, i, self.network, per_node[i]) for i in range(n_nodes)
        ]
        self.transport = Transport(
            self.network, mailbox_capacity=mailbox_capacity
        )

    def __len__(self) -> int:
        return len(self.nodes)

    def __getitem__(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def __iter__(self):
        return iter(self.nodes)
