"""Hardware catalogue for the simulated PC cluster.

The constants mirror Table 1 of the paper plus the disk and network
figures quoted in §5.2: Pentium Pro 200 MHz nodes with 64 MB of memory,
a 155 Mbps ATM NIC with ~120 Mbps effective TCP throughput and ~0.5 ms
point-to-point round-trip time, and two generations of SCSI disks
(Seagate Barracuda 7 200 rpm, HITACHI DK3E1T 12 000 rpm).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CpuSpec",
    "DiskSpec",
    "NicSpec",
    "NodeSpec",
    "PENTIUM_PRO_200",
    "PENTIUM_III_800",
    "BARRACUDA_7200",
    "DK3E1T_12000",
    "CAVIAR_IDE",
    "ATM_155",
    "ETHERNET_10",
    "PAPER_NODE",
    "MB",
    "KB",
]

#: One kibibyte / mebibyte in bytes (the paper speaks loosely of "MB").
KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class CpuSpec:
    """A CPU model.

    ``specint95`` is used only as a *relative* speed factor between
    catalogue CPUs; absolute per-operation costs live in
    :class:`repro.analysis.cost_model.CostModel`.
    """

    name: str
    clock_mhz: float
    specint95: float

    @property
    def speed_factor(self) -> float:
        """Speed relative to the paper's Pentium Pro 200 baseline."""
        return self.specint95 / PENTIUM_PRO_200.specint95


@dataclass(frozen=True)
class DiskSpec:
    """A rotating disk characterised the way the paper characterises them.

    Average access time for a random read is ``avg_seek_s`` +
    ``rotational_latency_s`` + transfer time of the request.
    """

    name: str
    rpm: float
    avg_seek_s: float
    transfer_bytes_per_s: float
    interface: str = "SCSI"

    @property
    def rotational_latency_s(self) -> float:
        """Average rotational wait: half a revolution."""
        return 0.5 * 60.0 / self.rpm

    def access_time_s(self, size_bytes: int, sequential: bool = False) -> float:
        """Service time for one request of ``size_bytes``.

        Random requests pay seek + rotational latency; sequential ones pay
        transfer time only (the simplification the paper itself uses).
        """
        if size_bytes < 0:
            raise ValueError(f"negative I/O size {size_bytes}")
        transfer = size_bytes / self.transfer_bytes_per_s
        if sequential:
            return transfer
        return self.avg_seek_s + self.rotational_latency_s + transfer


@dataclass(frozen=True)
class NicSpec:
    """A network interface.

    ``effective_bytes_per_s`` is the *measured* point-to-point TCP
    throughput (the paper reports ~120 Mbps over the 155 Mbps ATM link);
    ``one_way_latency_s`` is half the measured round-trip time (~0.5 ms).
    """

    name: str
    raw_bits_per_s: float
    effective_bits_per_s: float
    one_way_latency_s: float

    @property
    def effective_bytes_per_s(self) -> float:
        """Usable payload bandwidth in bytes/second."""
        return self.effective_bits_per_s / 8.0

    def transmit_time_s(self, size_bytes: int) -> float:
        """Time to clock ``size_bytes`` onto the wire at effective rate."""
        if size_bytes < 0:
            raise ValueError(f"negative message size {size_bytes}")
        return size_bytes / self.effective_bytes_per_s


@dataclass(frozen=True)
class NodeSpec:
    """Full per-node hardware description (paper Table 1)."""

    name: str
    cpu: CpuSpec
    memory_bytes: int
    disk: DiskSpec
    nic: NicSpec


# --- catalogue ------------------------------------------------------------

PENTIUM_PRO_200 = CpuSpec(name="Intel Pentium Pro 200MHz", clock_mhz=200.0, specint95=8.2)
#: Quoted in §3.1 for the PC-vs-WS comparison; not used by the experiments.
PENTIUM_III_800 = CpuSpec(name="Intel Pentium III 800MHz", clock_mhz=800.0, specint95=38.3)

#: Seagate Barracuda 7 200 rpm SCSI — avg seek 8.8 ms, rotation wait 4.2 ms (§5.2).
BARRACUDA_7200 = DiskSpec(
    name="Seagate Barracuda 7200rpm",
    rpm=7200.0,
    avg_seek_s=8.8e-3,
    transfer_bytes_per_s=10 * MB,
)

#: HITACHI DK3E1T 12 000 rpm — avg seek 5 ms, rotation wait 2.5 ms (§5.2).
DK3E1T_12000 = DiskSpec(
    name="HITACHI DK3E1T 12000rpm",
    rpm=12000.0,
    avg_seek_s=5.0e-3,
    transfer_bytes_per_s=15 * MB,
)

#: WesternDigital Caviar 32500 IDE — holds the transaction data files.
CAVIAR_IDE = DiskSpec(
    name="WesternDigital Caviar32500 IDE",
    rpm=5200.0,
    avg_seek_s=11.0e-3,
    transfer_bytes_per_s=6 * MB,
    interface="IDE",
)

#: 155 Mbps ATM (Interphase 5515 PCI + HITACHI AN1000-20 switch):
#: effective TCP throughput ~120 Mbps, point-to-point RTT ~0.5 ms.
ATM_155 = NicSpec(
    name="ATM 155Mbps (Interphase 5515)",
    raw_bits_per_s=155e6,
    effective_bits_per_s=120e6,
    one_way_latency_s=0.25e-3,
)

#: 10Base-T Ethernet control network (present on the cluster, unused here).
ETHERNET_10 = NicSpec(
    name="Ethernet 10Base-T",
    raw_bits_per_s=10e6,
    effective_bits_per_s=8e6,
    one_way_latency_s=0.5e-3,
)

#: The paper's node: Pentium Pro 200, 64 MB RAM, SCSI swap disk, ATM NIC.
PAPER_NODE = NodeSpec(
    name="IIS PC-cluster node",
    cpu=PENTIUM_PRO_200,
    memory_bytes=64 * MB,
    disk=BARRACUDA_7200,
    nic=ATM_155,
)
