"""Message transport: named channels between nodes.

Models the paper's TLI mesh — every process pair is connected by an
ordered, reliable byte stream.  Here each (node, channel-name) pair owns
a mailbox :class:`~repro.sim.store.Store`; ``send`` moves a message
across the :class:`~repro.cluster.network.Network` and deposits it in
the destination mailbox, preserving per-sender ordering because each
sender's egress NIC serialises its transmissions.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import NetworkError
from repro.cluster.network import Message, Network
from repro.sim.process import Process
from repro.sim.store import Store

__all__ = ["Transport"]


class Transport:
    """Channel-addressed messaging on top of :class:`Network`."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self.env = network.env
        self._mailboxes: dict[tuple[int, str], Store] = {}

    def mailbox(self, node_id: int, channel: str) -> Store:
        """The mailbox for ``channel`` on ``node_id`` (created on demand)."""
        key = (node_id, channel)
        if key not in self._mailboxes:
            if node_id not in self.network.node_ids:
                raise NetworkError(f"unknown node {node_id}")
            self._mailboxes[key] = Store(self.env)
        return self._mailboxes[key]

    def send(
        self,
        src: int,
        dst: int,
        channel: str,
        payload: object,
        size_bytes: int,
    ) -> Generator:
        """Process generator: transfer and deliver one message.

        Completes once the message sits in the destination mailbox. Yield
        it from a process for synchronous sends, or wrap it with
        :meth:`post` for fire-and-forget.
        """
        msg = Message(src=src, dst=dst, channel=channel, payload=payload, size_bytes=size_bytes)
        yield from self.network.transfer(msg)
        yield self.mailbox(dst, channel).put(msg)
        return msg

    def post(
        self,
        src: int,
        dst: int,
        channel: str,
        payload: object,
        size_bytes: int,
    ) -> Process:
        """Fire-and-forget send: runs as its own process.

        The sender still competes for its egress NIC, so back-to-back
        posts from one node serialise realistically.
        """
        return self.env.process(self.send(src, dst, channel, payload, size_bytes))

    def recv(self, node_id: int, channel: str):
        """Event yielding the next :class:`Message` on the channel."""
        return self.mailbox(node_id, channel).get()

    def local_deliver(self, node_id: int, channel: str, payload: object) -> None:
        """Deposit a message into a local mailbox without touching the network.

        Used when a node addresses itself (the hash function frequently
        maps itemsets back to their producer, which costs no network time).
        """
        msg = Message(
            src=node_id,
            dst=node_id,
            channel=channel,
            payload=payload,
            size_bytes=0,
            send_time=self.env.now,
            deliver_time=self.env.now,
        )
        self.mailbox(node_id, channel).put(msg)

    def pending(self, node_id: int, channel: str) -> int:
        """Number of undelivered messages waiting in the mailbox."""
        return len(self.mailbox(node_id, channel))
