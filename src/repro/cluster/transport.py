"""Message transport: named channels between nodes.

Models the paper's TLI mesh — every process pair is connected by an
ordered, reliable byte stream.  Here each (node, channel-name) pair owns
a :class:`Mailbox`; ``send`` moves a message across the
:class:`~repro.cluster.network.Network` and deposits it in the
destination mailbox, preserving per-sender ordering because each
sender's egress NIC serialises its transmissions.

Mailboxes are unbounded by default (the paper's TLI endpoints buffer in
kernel memory); passing ``mailbox_capacity`` bounds every mailbox, so a
sender whose receiver has fallen behind *blocks in virtual time* —
back-pressure instead of infinite buffering.  Every mailbox keeps
delivery/depth/occupancy statistics either way (:meth:`Transport.stats`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.analysis.race import access as _race
from repro.errors import NetworkError
from repro.cluster.network import Message, Network
from repro.sim.process import Process
from repro.sim.store import Store, StoreGet, StorePut

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Environment

__all__ = ["Mailbox", "Transport"]


class Mailbox(Store):
    """A mailbox store that accounts for its own traffic.

    Tracks total deliveries, the peak queue depth, how many puts ever
    blocked on a full mailbox, and the time-weighted mean depth
    (*occupancy*) — the queueing picture the flat counters of
    ``NetworkStats`` can't show.
    """

    #: Same-epoch deposits from different senders land in queue order
    #: (see repro.analysis.race).
    __race_shared__ = True

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        node_id: int = -1,
        channel: str = "",
    ) -> None:
        super().__init__(env, capacity)
        self.node_id = node_id
        self.channel = channel
        self.delivered = 0
        self.peak_depth = 0
        self.blocked_puts = 0
        self._t0 = env.now
        self._last_t = env.now
        self._depth_area = 0.0
        self._race = _race.TRACKER

    # Occupancy accounting only: callers (_store_item/_select_item)
    # record the (queue, channel) cell, and same-instant _advance calls
    # fold a zero-width (now - last_t == 0) area term, so the sum is
    # identical in any order.
    def _advance(self) -> None:  # repro-lint: disable=RPL601
        now = self.env.now
        self._depth_area += len(self.items) * (now - self._last_t)
        self._last_t = now

    def _store_item(self, item: object) -> None:
        # repro-race: ordered -- a same-instant put/get pair commutes:
        # put appends at the tail, get takes the head (or settles
        # against this put if the queue was empty), so the handoff and
        # the resulting queue are identical in either order and
        # per-sender FIFO is preserved.
        if self._race is not None:
            self._race.write(self, ("queue", self.channel))
        self._advance()
        super()._store_item(item)
        self.delivered += 1
        if len(self.items) > self.peak_depth:
            self.peak_depth = len(self.items)

    def _select_item(self, event: StoreGet) -> object:
        if self._race is not None:
            self._race.write(self, ("queue", self.channel))
        self._advance()
        return super()._select_item(event)

    # The queue mutation itself happens in _store_item (recorded there);
    # this override only bumps the commutative blocked-put counter.
    def _do_put(self, event: StorePut) -> bool:  # repro-lint: disable=RPL601
        done = super()._do_put(event)
        # Count each put at most once, however many settlement rounds it
        # spends waiting for room.
        if not done and not event._blocked_once:
            event._blocked_once = True
            self.blocked_puts += 1
        return done

    def occupancy(self) -> float:
        """Time-weighted mean queue depth since creation."""
        self._advance()
        elapsed = self._last_t - self._t0
        return self._depth_area / elapsed if elapsed > 0 else 0.0

    def stats(self) -> dict:
        return {
            "delivered": self.delivered,
            "depth": len(self.items),
            "peak_depth": self.peak_depth,
            "blocked_puts": self.blocked_puts,
            "occupancy": self.occupancy(),
        }


# Transport's only mutation is the lazy mailbox create in mailbox():
# guarded by a key-present check, so concurrent same-instant callers for
# a new key leave the identical state (one fresh empty Mailbox) in
# either order; the mailboxes themselves are hooked.
class Transport:  # repro-lint: disable=RPL602
    """Channel-addressed messaging on top of :class:`Network`."""

    def __init__(
        self, network: Network, mailbox_capacity: Optional[int] = None
    ) -> None:
        if mailbox_capacity is not None and mailbox_capacity <= 0:
            raise NetworkError(
                f"mailbox capacity must be positive, got {mailbox_capacity}"
            )
        self.network = network
        self.env = network.env
        self.mailbox_capacity = mailbox_capacity
        self._mailboxes: dict[tuple[int, str], Mailbox] = {}

    def mailbox(self, node_id: int, channel: str) -> Mailbox:
        """The mailbox for ``channel`` on ``node_id`` (created on demand)."""
        key = (node_id, channel)
        if key not in self._mailboxes:
            if node_id not in self.network.node_ids:
                raise NetworkError(f"unknown node {node_id}")
            capacity = (
                float("inf") if self.mailbox_capacity is None
                else self.mailbox_capacity
            )
            self._mailboxes[key] = Mailbox(self.env, capacity, node_id, channel)
        return self._mailboxes[key]

    def send(
        self,
        src: int,
        dst: int,
        channel: str,
        payload: object,
        size_bytes: int,
    ) -> Generator:
        """Process generator: transfer and deliver one message.

        Completes once the message sits in the destination mailbox. Yield
        it from a process for synchronous sends, or wrap it with
        :meth:`post` for fire-and-forget.
        """
        msg = Message(src=src, dst=dst, channel=channel, payload=payload, size_bytes=size_bytes)
        yield from self.network.transfer(msg)
        yield self.mailbox(dst, channel).put(msg)
        return msg

    def post(
        self,
        src: int,
        dst: int,
        channel: str,
        payload: object,
        size_bytes: int,
    ) -> Process:
        """Fire-and-forget send: runs as its own process.

        The sender still competes for its egress NIC, so back-to-back
        posts from one node serialise realistically.
        """
        return self.env.process(self.send(src, dst, channel, payload, size_bytes))

    def recv(self, node_id: int, channel: str) -> StoreGet:
        """Event yielding the next :class:`Message` on the channel."""
        return self.mailbox(node_id, channel).get()

    def local_deliver(self, node_id: int, channel: str, payload: object) -> None:
        """Deposit a message into a local mailbox without touching the network.

        Used when a node addresses itself (the hash function frequently
        maps itemsets back to their producer, which costs no network time).
        """
        msg = Message(
            src=node_id,
            dst=node_id,
            channel=channel,
            payload=payload,
            size_bytes=0,
            send_time=self.env.now,
            deliver_time=self.env.now,
        )
        self.mailbox(node_id, channel).put(msg)

    def pending(self, node_id: int, channel: str) -> int:
        """Number of undelivered messages waiting in the mailbox."""
        return len(self.mailbox(node_id, channel))

    def stats(self) -> "dict[str, dict]":
        """Per-mailbox delivery/depth/occupancy statistics, keyed
        ``"<node>:<channel>"`` in creation order."""
        return {
            f"{node_id}:{channel}": mbox.stats()
            for (node_id, channel), mbox in self._mailboxes.items()
        }
