"""Named workload catalogue.

The association-rule-mining literature (and the appendix material bundled
with the paper's proceedings) identifies workloads by the Quest
generator's parameters: ``T<avg txn len>.I<avg pattern len>.D<txns>``.
This module names the configurations referenced around the paper so that
examples and benchmarks can request them symbolically, plus the paper's
own §5.1 evaluation workload.
"""

from __future__ import annotations

from repro.datagen.corpus import TransactionDatabase
from repro.datagen.quest import QuestGenerator, QuestParams, parse_workload_name
from repro.errors import DataGenError

__all__ = ["WORKLOADS", "paper_workload_params", "make_workload"]

#: Literature workloads (name -> default item-pool size).  The D100K+
#: entries are heavyweight for pure Python; the scaled entries mirror
#: them at tractable size.
WORKLOADS: dict[str, dict] = {
    # Classic Quest configurations (Agrawal & Srikant; also in the
    # SC'96 appendix bundled with the paper's scan).
    "T5.I2.D100K": {"n_items": 1000},
    "T10.I4.D100K": {"n_items": 1000},
    "T15.I4.D100K": {"n_items": 1000},
    "T20.I6.D100K": {"n_items": 1000},
    "T10.I6.D400K": {"n_items": 1000},
    # The paper's §5.1 evaluation run: 1M txns, 5000 items (minsup 0.1%).
    "paper-5.1": {"name": "T10.I4.D1000K", "n_items": 5000},
    # The paper's Table 2 run: 10M txns, 5000 items (minsup 0.7%).
    "paper-table2": {"name": "T10.I4.D10000K", "n_items": 5000},
    # Tractable stand-ins preserving the ratios (see harness.scales).
    "scaled-small": {"name": "T10.I4.D1K", "n_items": 250},
    "scaled-full": {"name": "T10.I4.D8K", "n_items": 600},
}


def paper_workload_params(alias: str, seed: int = 42) -> QuestParams:
    """Resolve a catalogue alias to generator parameters."""
    if alias not in WORKLOADS:
        raise DataGenError(
            f"unknown workload {alias!r}; have {sorted(WORKLOADS)}"
        )
    entry = dict(WORKLOADS[alias])
    name = entry.pop("name", alias)
    return parse_workload_name(name, seed=seed, **entry)


def make_workload(alias: str, seed: int = 42) -> TransactionDatabase:
    """Generate a catalogue workload.

    The ``paper-*`` aliases describe the original experiments' full
    sizes; generating them takes minutes and mining them in pure Python
    is impractical — they exist so the mapping to the paper is explicit.
    """
    return QuestGenerator(paper_workload_params(alias, seed=seed)).generate()
