"""Synthetic basket-data generation (IBM Quest reimplementation)."""

from repro.datagen.corpus import TransactionDatabase
from repro.datagen.quest import QuestGenerator, QuestParams, parse_workload_name
from repro.datagen.workloads import WORKLOADS, make_workload, paper_workload_params

__all__ = [
    "TransactionDatabase",
    "QuestGenerator",
    "QuestParams",
    "parse_workload_name",
    "generate",
    "WORKLOADS",
    "make_workload",
    "paper_workload_params",
]


def generate(name: str, **overrides: object) -> TransactionDatabase:
    """One-call convenience: ``generate("T10.I4.D10K", n_items=500)``."""
    return QuestGenerator(parse_workload_name(name, **overrides)).generate()
