"""Transaction database container and partitioning.

Transactions are stored CSR-style (one flat ``items`` array plus an
``offsets`` array), which keeps pass-1 counting and per-transaction
iteration NumPy-fast while allowing cheap horizontal partitioning — the
paper splits the generated file round-robin across the application
nodes' local disks.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.errors import DataGenError

__all__ = ["TransactionDatabase"]


class TransactionDatabase:
    """An immutable set of basket transactions in CSR layout."""

    def __init__(self, items: np.ndarray, offsets: np.ndarray, n_items: int, name: str = "") -> None:
        items = np.asarray(items, dtype=np.int32)
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.ndim != 1 or offsets.size == 0 or offsets[0] != 0:
            raise DataGenError("offsets must be 1-D, non-empty, and start at 0")
        if offsets[-1] != items.size:
            raise DataGenError(
                f"offsets end ({offsets[-1]}) must equal items length ({items.size})"
            )
        if np.any(np.diff(offsets) < 0):
            raise DataGenError("offsets must be non-decreasing")
        if items.size and (items.min() < 0 or items.max() >= n_items):
            raise DataGenError("item ids out of range")
        self.items = items
        self.offsets = offsets
        self.n_items = int(n_items)
        self.name = name

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_arrays(
        cls, txns: Sequence[np.ndarray], n_items: int, name: str = ""
    ) -> "TransactionDatabase":
        """Build from a sequence of per-transaction item arrays."""
        lengths = np.fromiter((len(t) for t in txns), dtype=np.int64, count=len(txns))
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        if txns:
            items = np.concatenate([np.asarray(t, dtype=np.int32) for t in txns])
        else:
            items = np.empty(0, dtype=np.int32)
        return cls(items, offsets, n_items=n_items, name=name)

    @classmethod
    def from_lists(
        cls, txns: Sequence[Sequence[int]], n_items: int, name: str = ""
    ) -> "TransactionDatabase":
        """Build from plain Python lists of item ids."""
        return cls.from_arrays(
            [np.asarray(sorted(set(t)), dtype=np.int32) for t in txns],
            n_items=n_items,
            name=name,
        )

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return self.offsets.size - 1

    def __getitem__(self, idx: int) -> np.ndarray:
        if not -len(self) <= idx < len(self):
            raise IndexError(idx)
        if idx < 0:
            idx += len(self)
        return self.items[self.offsets[idx] : self.offsets[idx + 1]]

    def __iter__(self) -> Iterator[np.ndarray]:
        for i in range(len(self)):
            yield self[i]

    @property
    def total_items(self) -> int:
        """Total number of (transaction, item) pairs."""
        return int(self.items.size)

    @property
    def avg_txn_len(self) -> float:
        """Mean transaction size."""
        return self.total_items / len(self) if len(self) else 0.0

    def size_bytes(self) -> int:
        """Approximate on-disk size (4 bytes per item + 8 per txn header),
        mirroring the paper's ~80 MB for 1 M transactions."""
        return 4 * self.total_items + 8 * len(self)

    def item_counts(self) -> np.ndarray:
        """Support count of every single item (vectorised pass 1)."""
        return np.bincount(self.items, minlength=self.n_items)

    # -- partitioning ---------------------------------------------------------

    def partition(self, n_parts: int) -> list["TransactionDatabase"]:
        """Split round-robin into ``n_parts`` databases (paper's layout).

        Round-robin (rather than contiguous blocks) matches the statistical
        homogeneity the paper relies on when each node scans its local file.
        """
        if n_parts <= 0:
            raise DataGenError(f"n_parts must be positive, got {n_parts}")
        parts: list[list[np.ndarray]] = [[] for _ in range(n_parts)]
        for i in range(len(self)):
            parts[i % n_parts].append(self[i])
        return [
            TransactionDatabase.from_arrays(
                p, n_items=self.n_items, name=f"{self.name}/part{j}"
            )
            for j, p in enumerate(parts)
        ]

    # -- persistence ------------------------------------------------------------

    def save_dat(self, path: "str | Path") -> None:
        """Write the classic text format: one transaction per line,
        space-separated item ids (what the original Quest binary emitted
        and what the paper's nodes kept on their local IDE disks)."""
        with open(Path(path), "w", encoding="ascii") as fh:
            for txn in self:
                fh.write(" ".join(map(str, txn.tolist())))
                fh.write("\n")

    @classmethod
    def load_dat(cls, path: "str | Path", n_items: int = 0, name: str = "") -> "TransactionDatabase":
        """Read the classic text format.

        ``n_items`` of 0 infers the item universe as ``max id + 1``.
        Blank lines are skipped; duplicate ids within a line rejected via
        the CSR validator.
        """
        txns: list[np.ndarray] = []
        max_id = -1
        with open(Path(path), "r", encoding="ascii") as fh:
            for line in fh:
                parts = line.split()
                if not parts:
                    continue
                arr = np.array(sorted({int(p) for p in parts}), dtype=np.int32)
                if arr.size:
                    max_id = max(max_id, int(arr[-1]))
                txns.append(arr)
        if n_items <= 0:
            n_items = max_id + 1
        return cls.from_arrays(txns, n_items=n_items, name=name or str(path))

    def save(self, path: "str | Path") -> None:
        """Persist to ``.npz``."""
        np.savez_compressed(
            Path(path),
            items=self.items,
            offsets=self.offsets,
            n_items=np.int64(self.n_items),
            name=np.str_(self.name),
        )

    @classmethod
    def load(cls, path: "str | Path") -> "TransactionDatabase":
        """Load a database previously written by :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as z:
            return cls(
                z["items"],
                z["offsets"],
                n_items=int(z["n_items"]),
                name=str(z["name"]),
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TransactionDatabase {self.name or 'unnamed'} "
            f"txns={len(self)} avg_len={self.avg_txn_len:.1f}>"
        )
