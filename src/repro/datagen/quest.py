"""IBM Quest-style synthetic basket data generator.

Reimplements the transaction generator of Agrawal & Srikant (VLDB '94,
§4), which the paper uses for all its workloads ("Transaction data was
produced using a data generation program developed by Agrawal"):

- a pool of ``n_patterns`` *potentially large itemsets* is drawn, each of
  Poisson(``avg_pattern_len``) size, sharing a correlated fraction of
  items with its predecessor;
- each pattern gets an exponentially-distributed weight (normalised to a
  probability) and a per-pattern *corruption level* from N(0.5, 0.1);
- a transaction of Poisson(``avg_txn_len``) intended size is filled by
  sampling patterns by weight and dropping items while U(0,1) < the
  pattern's corruption level; oversized patterns go into the next
  transaction half the time.

Workload names follow the literature's convention, e.g. ``T10.I4.D100K``
= average transaction size 10, average pattern size 4, 100 000
transactions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.errors import DataGenError

__all__ = ["QuestParams", "QuestGenerator", "parse_workload_name"]


@dataclass(frozen=True)
class QuestParams:
    """Parameters of the Quest generator, named as in the VLDB '94 paper."""

    n_transactions: int = 1000
    avg_txn_len: float = 10.0  # |T|
    avg_pattern_len: float = 4.0  # |I|
    n_items: int = 1000  # N
    n_patterns: int = 200  # |L|
    correlation: float = 0.5
    corruption_mean: float = 0.5
    corruption_sd: float = 0.1
    seed: int = 12345

    def __post_init__(self) -> None:
        if self.n_transactions <= 0:
            raise DataGenError(f"n_transactions must be positive, got {self.n_transactions}")
        if self.n_items <= 1:
            raise DataGenError(f"n_items must exceed 1, got {self.n_items}")
        if self.avg_txn_len <= 0 or self.avg_pattern_len <= 0:
            raise DataGenError("average transaction/pattern sizes must be positive")
        if self.n_patterns <= 0:
            raise DataGenError(f"n_patterns must be positive, got {self.n_patterns}")
        if not 0.0 <= self.correlation <= 1.0:
            raise DataGenError(f"correlation must be in [0,1], got {self.correlation}")

    def workload_name(self) -> str:
        """Literature-style name, e.g. ``T10.I4.D100K``."""
        d = self.n_transactions
        if d % 1000 == 0:
            dpart = f"{d // 1000}K"
        else:
            dpart = str(d)
        return f"T{self.avg_txn_len:g}.I{self.avg_pattern_len:g}.D{dpart}"


_NAME_RE = re.compile(
    r"^T(?P<t>\d+(?:\.\d+)?)\.I(?P<i>\d+(?:\.\d+)?)\.D(?P<d>\d+)(?P<k>[Kk]?)$"
)


def parse_workload_name(name: str, **overrides: object) -> QuestParams:
    """Build :class:`QuestParams` from a ``T10.I4.D100K``-style name.

    Keyword overrides are passed through to the dataclass (``n_items``,
    ``seed``, ...).
    """
    m = _NAME_RE.match(name.strip())
    if m is None:
        raise DataGenError(f"unparseable workload name {name!r}")
    d = int(m.group("d")) * (1000 if m.group("k") else 1)
    kwargs: dict = dict(
        avg_txn_len=float(m.group("t")),
        avg_pattern_len=float(m.group("i")),
        n_transactions=d,
    )
    kwargs.update(overrides)
    return QuestParams(**kwargs)  # type: ignore[arg-type]


class QuestGenerator:
    """Stateful generator producing transactions for one parameter set."""

    def __init__(self, params: QuestParams) -> None:
        self.params = params
        self._rng = np.random.default_rng(params.seed)
        self._patterns: list[np.ndarray] = []
        self._weights: np.ndarray | None = None
        self._corruption: np.ndarray | None = None
        self._build_patterns()

    # -- pattern pool -----------------------------------------------------

    def _build_patterns(self) -> None:
        p = self.params
        rng = self._rng
        sizes = np.maximum(1, rng.poisson(p.avg_pattern_len, size=p.n_patterns))
        prev: np.ndarray | None = None
        patterns: list[np.ndarray] = []
        for size in sizes:
            size = int(min(size, p.n_items))
            items: set[int] = set()
            if prev is not None and prev.size:
                # Fraction of items reused from the previous pattern; the
                # fraction is exponentially distributed with the
                # correlation level as its mean, clipped to [0, 1].
                frac = min(1.0, rng.exponential(p.correlation))
                n_reuse = min(int(round(frac * size)), prev.size)
                if n_reuse:
                    items.update(
                        rng.choice(prev, size=n_reuse, replace=False).tolist()
                    )
            while len(items) < size:
                items.add(int(rng.integers(0, p.n_items)))
            pat = np.array(sorted(items), dtype=np.int32)
            patterns.append(pat)
            prev = pat
        self._patterns = patterns

        weights = rng.exponential(1.0, size=p.n_patterns)
        self._weights = weights / weights.sum()
        self._corruption = np.clip(
            rng.normal(p.corruption_mean, p.corruption_sd, size=p.n_patterns), 0.0, 0.95
        )

    @property
    def patterns(self) -> list[np.ndarray]:
        """The potentially-large itemset pool (sorted int32 arrays)."""
        return list(self._patterns)

    # -- transactions ------------------------------------------------------

    def generate(self) -> "TransactionDatabase":
        """Produce the full database described by the parameters."""
        from repro.datagen.corpus import TransactionDatabase

        p = self.params
        rng = self._rng
        assert self._weights is not None and self._corruption is not None

        txns: list[np.ndarray] = []
        carry: np.ndarray | None = None  # pattern postponed to the next txn
        pattern_idx = np.arange(p.n_patterns)

        target_sizes = np.maximum(1, rng.poisson(p.avg_txn_len, size=p.n_transactions))
        for target in target_sizes:
            target = int(target)
            items: set[int] = set()
            if carry is not None:
                items.update(carry.tolist())
                carry = None
            guard = 0
            while len(items) < target and guard < 50:
                guard += 1
                pi = int(rng.choice(pattern_idx, p=self._weights))
                pat = self._patterns[pi]
                c = float(self._corruption[pi])
                kept = pat[rng.random(pat.size) >= c]
                if kept.size == 0:
                    continue
                if len(items) + kept.size > target and items:
                    # Doesn't fit: insert anyway half the time, otherwise
                    # postpone to the next transaction (VLDB'94 rule).
                    if rng.random() < 0.5:
                        items.update(kept.tolist())
                    else:
                        carry = kept
                    break
                items.update(kept.tolist())
            if not items:
                items.add(int(rng.integers(0, p.n_items)))
            txns.append(np.array(sorted(items), dtype=np.int32))

        return TransactionDatabase.from_arrays(txns, n_items=p.n_items, name=p.workload_name())
